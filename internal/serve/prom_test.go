package serve

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

// TestServePromExposition pins the predtop_serve_* metric series a live
// daemon exports: exact series names and label shapes (the contract a
// scrape config or dashboard is written against), plus value-level checks
// tied to the traffic the test generated. This extends the obs package's
// golden exposition tests one level up — through a real /metrics scrape of a
// serving daemon rather than a bare registry.
func TestServePromExposition(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, "tran", "tran", 1)
	s := startTestServer(t, dir, nil)

	// Traffic: 3 distinct queries (misses), 1 repeat (hit), 1 bad request,
	// 1 models listing, 1 reload.
	for _, sp := range [][2]int{{0, 2}, {1, 3}, {2, 4}, {0, 2}} {
		if _, code := postPredict(t, s.URL(), PredictRequest{
			Bench: "GPT-3", Layers: testLayers, Lo: sp[0], Hi: sp[1],
		}); code != 200 {
			t.Fatalf("query [%d,%d): code %d", sp[0], sp[1], code)
		}
	}
	resp, err := http.Post(s.URL()+"/predict", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad request: code %d", resp.StatusCode)
	}
	if resp, err = http.Get(s.URL() + "/models"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp, err = http.Post(s.URL()+"/reload", "application/json", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if resp, err = http.Get(s.URL() + "/metrics"); err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(raw)

	// Exact sample lines whose values are fully determined by the traffic
	// above. Generation is 2 (startup load + explicit reload), which also
	// purged the memo — so hits/misses still read the pre-reload traffic.
	for _, want := range []string{
		`predtop_serve_registry_generation 2`,
		`predtop_serve_registry_models 1`,
		`predtop_serve_reloads_total{result="ok"} 2`,
		`predtop_serve_cache_hits_total 1`,
		`predtop_serve_cache_misses_total 3`,
		`predtop_serve_batched_requests_total 3`,
		`predtop_serve_requests_total{code="200",endpoint="/predict"} 4`,
		`predtop_serve_requests_total{code="400",endpoint="/predict"} 1`,
		`predtop_serve_requests_total{code="200",endpoint="/models"} 1`,
		`predtop_serve_requests_total{code="200",endpoint="/reload"} 1`,
		`predtop_serve_queue_depth 0`, // every submitted job was dequeued
		"# TYPE predtop_serve_registry_generation gauge",
		"# TYPE predtop_serve_reloads_total counter",
		"# TYPE predtop_serve_request_seconds histogram",
		"# TYPE predtop_serve_batch_size histogram",
		"# TYPE predtop_serve_queue_depth gauge",
	} {
		if !strings.Contains(exposition, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Per-endpoint latency histogram: a labeled series with both the
	// endpoint label and the le bucket label, and a matching _count.
	bucketRe := regexp.MustCompile(`(?m)^predtop_serve_request_seconds_bucket\{endpoint="/predict",le="\+Inf"\} (\d+)$`)
	mb := bucketRe.FindStringSubmatch(exposition)
	if mb == nil {
		t.Fatal("no +Inf bucket for the /predict latency histogram")
	}
	if mb[1] != "5" { // 4 ok + 1 bad request
		t.Errorf("/predict latency count = %s, want 5", mb[1])
	}
	if !strings.Contains(exposition, `predtop_serve_request_seconds_count{endpoint="/predict"} 5`) {
		t.Error("missing /predict latency _count")
	}
	if !strings.Contains(exposition, `predtop_serve_request_seconds_count{endpoint="/models"} 1`) {
		t.Error("missing /models latency _count")
	}

	// One TYPE header per metric name even with several labeled series.
	if n := strings.Count(exposition, "# TYPE predtop_serve_request_seconds histogram"); n != 1 {
		t.Errorf("request_seconds TYPE header appears %d times, want 1", n)
	}
	if n := strings.Count(exposition, "# TYPE predtop_serve_requests_total counter"); n != 1 {
		t.Errorf("requests_total TYPE header appears %d times, want 1", n)
	}

	// Batch accounting is internally consistent: batch_size_count equals
	// batches_total, and batched requests ≥ batches.
	var batches, sizeCount float64
	for _, ln := range strings.Split(exposition, "\n") {
		if name, v, ok := promSample(ln); ok {
			switch name {
			case BatchesMetric:
				batches = v
			case BatchSizeMetric + "_count":
				sizeCount = v
			}
		}
	}
	if batches == 0 || batches != sizeCount {
		t.Errorf("batches_total (%v) != batch_size_count (%v)", batches, sizeCount)
	}
}

// TestServePromRunInfo: the exposition carries the run-info series with the
// daemon's trace id, so scrapes can be joined to JSONL events.
func TestServePromRunInfo(t *testing.T) {
	dir := t.TempDir()
	writeTestModel(t, dir, "tran", "tran", 1)
	s := startTestServer(t, dir, nil)
	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	want := fmt.Sprintf(`trace_id="%s"`, s.trace.TraceID())
	if !strings.Contains(string(raw), want) {
		t.Fatalf("exposition missing run info label %s", want)
	}
}
