package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"predtop/internal/models"
)

// Request-validation bounds. They exist so an adversarial or buggy client is
// answered with a 4xx instead of making the daemon build an arbitrarily large
// operator graph (the encoded reachability masks are O(nodes²)).
const (
	// MaxRequestBytes bounds the /predict request body.
	MaxRequestBytes = 1 << 20
	// MaxLayers bounds the benchmark-depth override a request may ask for.
	MaxLayers = 64
	// MaxStageSegments bounds the stage length (hi-lo) of one query.
	MaxStageSegments = 16
)

// PredictRequest is the JSON body of POST /predict: which resident model to
// query, which benchmark stage graph to encode, and optionally a profiled
// ground-truth latency that feeds the online accuracy monitor.
type PredictRequest struct {
	// Model is the registry key (model file name without .predtop). Empty is
	// allowed when exactly one model is resident.
	Model string `json:"model,omitempty"`
	// Bench selects the benchmark family the stage is sliced from: "GPT-3"
	// or "MoE" (case-insensitive; "gpt3"/"moe" accepted).
	Bench string `json:"bench"`
	// Layers overrides the benchmark depth (0 = the paper's Table IV value).
	Layers int `json:"layers,omitempty"`
	// Lo and Hi delimit the stage as a segment range [lo, hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// GroundTruth, when present, is the profiled latency in seconds; the
	// server feeds (prediction, ground truth) to the accuracy monitor and
	// returns the relative error. Must be finite and positive.
	GroundTruth *float64 `json:"ground_truth,omitempty"`
	// Mesh is a free-form mesh label ("2x2") used only as the accuracy
	// monitor's mesh key.
	Mesh string `json:"mesh,omitempty"`
}

// PredictResponse is the JSON body of a successful /predict answer.
// LatencySeconds round-trips through JSON bit-exactly (shortest round-trip
// float encoding), so a client can compare it bitwise against a direct
// PredictEncoded call.
type PredictResponse struct {
	TraceID        string   `json:"trace_id,omitempty"`
	SpanID         string   `json:"span_id,omitempty"`
	Model          string   `json:"model"`
	Family         string   `json:"family"`
	Bench          string   `json:"bench"`
	Layers         int      `json:"layers,omitempty"`
	Lo             int      `json:"lo"`
	Hi             int      `json:"hi"`
	LatencySeconds float64  `json:"latency_s"`
	LatencyMS      float64  `json:"latency_ms"`
	Cached         bool     `json:"cached"`
	Generation     uint64   `json:"generation"`
	RelErrPct      *float64 `json:"rel_err_pct,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// benchConfig resolves a request's bench name to a benchmark model config,
// applying the depth override. ok is false for unknown names.
func benchConfig(bench string, layers int) (models.Config, bool) {
	var cfg models.Config
	switch strings.ToLower(strings.ReplaceAll(bench, "-", "")) {
	case "gpt3":
		cfg = models.GPT3()
	case "moe":
		cfg = models.MoE()
	default:
		return models.Config{}, false
	}
	if layers > 0 {
		cfg.Layers = layers
	}
	return cfg, true
}

// DecodePredictRequest parses and validates a /predict body. Every rejection
// is an error the handler maps to a 4xx — malformed JSON, unknown benchmarks,
// oversized depths or stages, inverted ranges, and non-finite or non-positive
// ground truths all land here, never in a panic or a poisoned cache. Range
// checks against the resolved benchmark's segment count happen later, once
// the benchmark model is built.
func DecodePredictRequest(data []byte) (*PredictRequest, error) {
	if len(data) > MaxRequestBytes {
		return nil, fmt.Errorf("request body exceeds %d bytes", MaxRequestBytes)
	}
	var req PredictRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("malformed JSON: %v", err)
	}
	if req.Bench == "" {
		return nil, fmt.Errorf("missing bench (want \"GPT-3\" or \"MoE\")")
	}
	if _, ok := benchConfig(req.Bench, 0); !ok {
		return nil, fmt.Errorf("unknown bench %q (want \"GPT-3\" or \"MoE\")", req.Bench)
	}
	if req.Layers < 0 || req.Layers > MaxLayers {
		return nil, fmt.Errorf("layers %d out of range [0, %d]", req.Layers, MaxLayers)
	}
	if req.Lo < 0 {
		return nil, fmt.Errorf("lo %d must be >= 0", req.Lo)
	}
	if req.Hi <= req.Lo {
		return nil, fmt.Errorf("empty stage range [%d, %d)", req.Lo, req.Hi)
	}
	if req.Hi-req.Lo > MaxStageSegments {
		return nil, fmt.Errorf("stage length %d exceeds %d segments", req.Hi-req.Lo, MaxStageSegments)
	}
	if gt := req.GroundTruth; gt != nil {
		if math.IsNaN(*gt) || math.IsInf(*gt, 0) || *gt <= 0 {
			return nil, fmt.Errorf("ground_truth must be a finite positive latency, got %v", *gt)
		}
	}
	return &req, nil
}
