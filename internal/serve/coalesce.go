package serve

import (
	"errors"
	"sync"
	"time"

	"predtop/internal/obs"
	"predtop/internal/predictor"
	"predtop/internal/stage"
)

// Metric names exported by the batch coalescer.
const (
	BatchesMetric         = "predtop_serve_batches_total"
	BatchedRequestsMetric = "predtop_serve_batched_requests_total"
	BatchSizeMetric       = "predtop_serve_batch_size"
	BatchMaxMetric        = "predtop_serve_batch_max"
)

// errCoalescerClosed is returned by submit after close — the server maps it
// to 503 during shutdown.
var errCoalescerClosed = errors.New("serve: coalescer closed")

// predictJob is one request's slot in a batch: its resolved predictor, its
// encoded stage graph, and the channel the runner closes once out is final.
type predictJob struct {
	tr   predictor.Trained
	enc  *stage.Encoded
	out  float64
	done chan struct{}
}

// coalescer folds concurrent predictions into batched forwards. Submitted
// jobs queue on a channel; the dispatcher takes the first job of a batch,
// keeps collecting until the batch is full or the coalescing window expires,
// then fans the whole batch through Trained.PredictEncodedBatch (grouped by
// predictor, so a mixed-model batch still runs each model's graphs as one
// batched call). Per-job results are bitwise identical to unbatched
// PredictEncoded — batching is amortization, never a numerical change.
type coalescer struct {
	ch       chan *predictJob
	maxBatch int
	window   time.Duration
	workers  int

	// mu guards closed so submit never sends on a closed channel.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	batches  *obs.Counter
	requests *obs.Counter
	sizeHist *obs.Histogram
	maxGauge *obs.Gauge
	maxSeen  int // dispatcher-only; mirrors into maxGauge
}

// batchSizeBuckets: 1, 2, 4, … 128 — batch size 1 lands in the first bucket,
// so `_bucket{le="1"}` < `_count` is the "batching actually happened" signal.
var batchSizeBuckets = obs.MustExpBuckets(1, 2, 8)

// newCoalescer builds an idle coalescer; call start to launch the dispatcher.
// window > 0 waits up to that long to fill a batch after its first job;
// window == 0 batches only what is already queued (no added latency).
func newCoalescer(maxBatch int, window time.Duration, workers int, metrics *obs.Registry) *coalescer {
	if maxBatch < 1 {
		maxBatch = 32
	}
	return &coalescer{
		ch:       make(chan *predictJob, 4*maxBatch),
		maxBatch: maxBatch,
		window:   window,
		workers:  workers,
		batches:  metrics.Counter(BatchesMetric),
		requests: metrics.Counter(BatchedRequestsMetric),
		sizeHist: metrics.Histogram(BatchSizeMetric, batchSizeBuckets),
		maxGauge: metrics.Gauge(BatchMaxMetric),
	}
}

// start launches the dispatcher goroutine.
func (c *coalescer) start() {
	c.wg.Add(1)
	go c.loop()
}

// submit enqueues one prediction and blocks until its batch ran.
func (c *coalescer) submit(tr predictor.Trained, enc *stage.Encoded) (float64, error) {
	j := &predictJob{tr: tr, enc: enc, done: make(chan struct{})}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return 0, errCoalescerClosed
	}
	c.ch <- j
	c.mu.RUnlock()
	<-j.done
	return j.out, nil
}

// close stops accepting jobs, drains the queue, and waits for the dispatcher
// to exit. Safe to call once the HTTP listener no longer produces submits.
func (c *coalescer) close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// loop is the dispatcher: one batch per iteration.
func (c *coalescer) loop() {
	defer c.wg.Done()
	batch := make([]*predictJob, 0, c.maxBatch)
	for {
		j, ok := <-c.ch
		if !ok {
			return
		}
		batch = append(batch[:0], j)
		if c.window > 0 {
			timer := time.NewTimer(c.window)
		fill:
			for len(batch) < c.maxBatch {
				select {
				case j2, ok := <-c.ch:
					if !ok {
						break fill // closed mid-window: run what we have
					}
					batch = append(batch, j2)
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < c.maxBatch {
				select {
				case j2, ok := <-c.ch:
					if !ok {
						break drain
					}
					batch = append(batch, j2)
				default:
					break drain
				}
			}
		}
		c.run(batch)
	}
}

// run executes one batch: jobs grouped by predictor, one batched forward per
// group, results delivered by closing each job's done channel.
func (c *coalescer) run(batch []*predictJob) {
	type group struct {
		idx  []int
		encs []*stage.Encoded
	}
	groups := map[predictor.Trained]*group{}
	for i, j := range batch {
		g := groups[j.tr]
		if g == nil {
			g = &group{}
			groups[j.tr] = g
		}
		g.idx = append(g.idx, i)
		g.encs = append(g.encs, j.enc)
	}
	for tr, g := range groups {
		outs := tr.PredictEncodedBatch(g.encs, c.workers)
		for k, i := range g.idx {
			batch[i].out = outs[k]
		}
	}
	for _, j := range batch {
		close(j.done)
	}
	c.batches.Inc()
	c.requests.Add(int64(len(batch)))
	c.sizeHist.Observe(float64(len(batch)))
	if len(batch) > c.maxSeen {
		c.maxSeen = len(batch)
		c.maxGauge.Set(float64(c.maxSeen))
	}
}
