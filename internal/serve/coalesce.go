package serve

import (
	"errors"
	"sync"
	"time"

	"predtop/internal/obs"
	"predtop/internal/predictor"
	"predtop/internal/stage"
)

// Metric names exported by the batch coalescer.
const (
	BatchesMetric         = "predtop_serve_batches_total"
	BatchedRequestsMetric = "predtop_serve_batched_requests_total"
	BatchSizeMetric       = "predtop_serve_batch_size"
	BatchMaxMetric        = "predtop_serve_batch_max"
	QueueDepthMetric      = "predtop_serve_queue_depth"
	// BatchFusedMetric counts per-model groups that ran through the fused
	// batched forward (one blocked matmul over the padded graph stack) rather
	// than a per-graph loop; PadWasteMetric records the fraction of that
	// padded stack spent on padding rows, 1 − Σnᵢ/(B·max nᵢ).
	BatchFusedMetric = "predtop_serve_batch_fused_total"
	PadWasteMetric   = "predtop_serve_batch_pad_waste"
)

// errCoalescerClosed is returned by submit after close — the server maps it
// to 503 during shutdown.
var errCoalescerClosed = errors.New("serve: coalescer closed")

// predictJob is one request's slot in a batch: its resolved predictor, its
// encoded stage graph, and the channel the runner closes once out is final.
// The dispatcher stamps the phase boundaries every request trace is built
// from: enqueue → dequeued into a batch → batched forward start/end.
type predictJob struct {
	tr   predictor.Trained
	enc  *stage.Encoded
	out  float64
	done chan struct{}

	tEnq      time.Time // submit called (request joined the queue)
	tDeq      time.Time // dispatcher pulled it into the current batch
	tFwd0     time.Time // its group's batched forward started
	tFwd1     time.Time // its group's batched forward finished
	batchSize int       // size of the batch it rode in
}

// coalescer folds concurrent predictions into batched forwards. Submitted
// jobs queue on a channel; the dispatcher takes the first job of a batch,
// keeps collecting until the batch is full or the coalescing window expires,
// then fans the whole batch through Trained.PredictEncodedBatch (grouped by
// predictor, so a mixed-model batch still runs each model's graphs as one
// batched call). Per-job results are bitwise identical to unbatched
// PredictEncoded — batching is amortization, never a numerical change.
type coalescer struct {
	ch       chan *predictJob
	maxBatch int
	window   time.Duration
	workers  int

	// mu guards closed so submit never sends on a closed channel.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	batches  *obs.Counter
	requests *obs.Counter
	sizeHist *obs.Histogram
	maxGauge *obs.Gauge
	depth    *obs.Gauge // live queue depth: +1 on submit, -1 on dequeue
	maxSeen  int        // dispatcher-only; mirrors into maxGauge
	fused    *obs.Counter
	padWaste *obs.Histogram

	// float32For, when set, resolves a predictor to its reduced-precision
	// engine; a non-nil result routes that group through float32 instead of
	// the fused float64 forward. Left nil unless Config.Float32 is on.
	float32For func(predictor.Trained) *predictor.Float32Predictor

	// beforeForward, when set, runs ahead of every batched forward (inside
	// the forward phase window) with the batch size — the hook the SLO e2e
	// test uses to slow the forward path without touching the predictor.
	beforeForward func(n int)
}

// batchSizeBuckets: 1, 2, 4, … 128 — batch size 1 lands in the first bucket,
// so `_bucket{le="1"}` < `_count` is the "batching actually happened" signal.
var batchSizeBuckets = obs.MustExpBuckets(1, 2, 8)

// padWasteBuckets partitions the [0, 1) pad-waste fraction. A B=1 or
// all-equal batch observes exactly 0 and lands in the first bucket; the tail
// buckets catch pathologically skewed batches where one giant graph pads
// everything else.
var padWasteBuckets = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9}

// newCoalescer builds an idle coalescer; call start to launch the dispatcher.
// window > 0 waits up to that long to fill a batch after its first job;
// window == 0 batches only what is already queued (no added latency).
func newCoalescer(maxBatch int, window time.Duration, workers int, metrics *obs.Registry) *coalescer {
	if maxBatch < 1 {
		maxBatch = 32
	}
	return &coalescer{
		ch:       make(chan *predictJob, 4*maxBatch),
		maxBatch: maxBatch,
		window:   window,
		workers:  workers,
		batches:  metrics.Counter(BatchesMetric),
		requests: metrics.Counter(BatchedRequestsMetric),
		sizeHist: metrics.Histogram(BatchSizeMetric, batchSizeBuckets),
		maxGauge: metrics.Gauge(BatchMaxMetric),
		depth:    metrics.Gauge(QueueDepthMetric),
		fused:    metrics.Counter(BatchFusedMetric),
		padWaste: metrics.Histogram(PadWasteMetric, padWasteBuckets),
	}
}

// start launches the dispatcher goroutine.
func (c *coalescer) start() {
	c.wg.Add(1)
	go c.loop()
}

// submit enqueues one prediction and blocks until its batch ran. The returned
// job carries the result plus the phase timestamps the dispatcher stamped.
func (c *coalescer) submit(tr predictor.Trained, enc *stage.Encoded) (*predictJob, error) {
	j := &predictJob{tr: tr, enc: enc, done: make(chan struct{}), tEnq: time.Now()}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, errCoalescerClosed
	}
	c.depth.Add(1)
	c.ch <- j
	c.mu.RUnlock()
	<-j.done
	return j, nil
}

// close stops accepting jobs, drains the queue, and waits for the dispatcher
// to exit. Safe to call once the HTTP listener no longer produces submits.
func (c *coalescer) close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// loop is the dispatcher: one batch per iteration.
func (c *coalescer) loop() {
	defer c.wg.Done()
	batch := make([]*predictJob, 0, c.maxBatch)
	for {
		j, ok := <-c.ch
		if !ok {
			return
		}
		c.dequeued(j)
		batch = append(batch[:0], j)
		if c.window > 0 {
			timer := time.NewTimer(c.window)
		fill:
			for len(batch) < c.maxBatch {
				select {
				case j2, ok := <-c.ch:
					if !ok {
						break fill // closed mid-window: run what we have
					}
					c.dequeued(j2)
					batch = append(batch, j2)
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < c.maxBatch {
				select {
				case j2, ok := <-c.ch:
					if !ok {
						break drain
					}
					c.dequeued(j2)
					batch = append(batch, j2)
				default:
					break drain
				}
			}
		}
		c.run(batch)
	}
}

// dequeued stamps a job's queue-exit and mirrors the live depth gauge.
func (c *coalescer) dequeued(j *predictJob) {
	j.tDeq = time.Now()
	c.depth.Add(-1)
}

// run executes one batch: jobs grouped by predictor, one batched forward per
// group, results delivered by closing each job's done channel.
func (c *coalescer) run(batch []*predictJob) {
	type group struct {
		idx  []int
		encs []*stage.Encoded
	}
	groups := map[predictor.Trained]*group{}
	for i, j := range batch {
		g := groups[j.tr]
		if g == nil {
			g = &group{}
			groups[j.tr] = g
		}
		g.idx = append(g.idx, i)
		g.encs = append(g.encs, j.enc)
	}
	for tr, g := range groups {
		t0 := time.Now()
		if c.beforeForward != nil {
			c.beforeForward(len(batch))
		}
		var outs []float64
		if f := c.lookupFloat32(tr); f != nil {
			outs = f.PredictEncodedBatch(g.encs)
		} else {
			outs = tr.PredictEncodedBatch(g.encs, c.workers)
			if tr.SupportsBatch() {
				c.fused.Inc()
				c.padWaste.Observe(padWasteFraction(g.encs))
			}
		}
		t1 := time.Now()
		for k, i := range g.idx {
			batch[i].out = outs[k]
			batch[i].tFwd0, batch[i].tFwd1 = t0, t1
			batch[i].batchSize = len(batch)
		}
	}
	for _, j := range batch {
		close(j.done)
	}
	c.batches.Inc()
	c.requests.Add(int64(len(batch)))
	c.sizeHist.Observe(float64(len(batch)))
	if len(batch) > c.maxSeen {
		c.maxSeen = len(batch)
		c.maxGauge.Set(float64(c.maxSeen))
	}
}

// lookupFloat32 resolves tr's float32 engine, or nil when the float64 path
// should run (float32 serving off, or no engine built for this predictor).
func (c *coalescer) lookupFloat32(tr predictor.Trained) *predictor.Float32Predictor {
	if c.float32For == nil {
		return nil
	}
	return c.float32For(tr)
}

// padWasteFraction is the share of the padded batch stack occupied by padding
// rows: 1 − Σnᵢ/(B·max nᵢ). Zero for B=1 and all-equal batches; approaches 1
// as one large graph pads out many small ones. Mirrors
// tensor.BatchLayout.PadWasteFraction without building the layout.
func padWasteFraction(encs []*stage.Encoded) float64 {
	maxN, sum := 0, 0
	for _, e := range encs {
		n := e.N()
		sum += n
		if n > maxN {
			maxN = n
		}
	}
	if maxN == 0 {
		return 0
	}
	return 1 - float64(sum)/float64(len(encs)*maxN)
}
