package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"predtop/internal/lru"
	"predtop/internal/models"
	"predtop/internal/obs"
	"predtop/internal/predictor"
	"predtop/internal/stage"
)

// Metric names exported by the request path.
const (
	RequestSecondsMetric = "predtop_serve_request_seconds"
	RequestsMetric       = "predtop_serve_requests_total"
	CacheHitsMetric      = "predtop_serve_cache_hits_total"
	CacheMissesMetric    = "predtop_serve_cache_misses_total"
)

// requestSecondsBuckets spans 100µs … ~0.8s, the plausible range for one
// batched forward of a pruned stage graph.
var requestSecondsBuckets = obs.MustExpBuckets(1e-4, 2, 14)

// Config configures a serving daemon (see Start). The zero value plus a
// ModelDir is usable: it binds a free localhost port, batches up to 32
// requests with no coalescing window, and runs without telemetry.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0"; read the bound
	// address back from Server.Addr).
	Addr string
	// ModelDir is the directory of *.predtop model files to serve.
	ModelDir string
	// MaxBatch caps how many concurrent /predict requests coalesce into one
	// batched forward (default 32).
	MaxBatch int
	// Window is how long the dispatcher waits to fill a batch after its
	// first request. 0 means batch only what is already queued — no added
	// latency, batching appears exactly when the server is actually loaded.
	Window time.Duration
	// Workers bounds intra-batch parallelism (0 = GOMAXPROCS).
	Workers int
	// CacheSize bounds the (model, generation, stage) → latency memo
	// (default 4096 entries, the same bound as the planner's stage-encoding
	// cache).
	CacheSize int
	// Float32 opts the daemon into reduced-precision inference: every loaded
	// model gets a float32 snapshot engine and /predict routes through it.
	// Predictions then track the float64 path within the pinned tolerance of
	// the float32 determinism table instead of matching PredictEncoded bit for
	// bit. Off by default — the float64 path stays the bitwise reference.
	Float32 bool

	// Metrics, Sink, Flight, Trace, Acc, and Log are the observability
	// fan-out; each is optional and nil-safe. When Metrics is set but Acc is
	// nil, the server creates its own accuracy monitor so ground-truth
	// requests always feed the predtop_accuracy_* gauges.
	Metrics *obs.Registry
	Sink    *obs.Sink
	Flight  *obs.FlightRecorder
	Trace   *obs.TraceContext
	Acc     *obs.AccuracyMonitor
	Log     *obs.Logger

	// SLOP99 is the /predict p99 latency objective and SLOErr the tolerated
	// bad-request fraction (the error budget). Setting either enables the
	// rolling SLO tracker — 1m/5m/1h windows, predtop_slo_* gauges, the
	// edge-triggered predtop_slo_breach_total counter, and breach-triggered
	// incident capture. Both zero leaves SLO tracking off entirely.
	SLOP99 time.Duration
	SLOErr float64
	// SLOMinSamples arms breach detection per window (default 10): an idle
	// daemon's first slow request cannot trip a breach on its own.
	SLOMinSamples int
	// IncidentDir, when set, receives one evidence bundle per ok→breach
	// transition: a flight-recorder dump plus a bounded-window CPU profile,
	// referenced from the {"event":"slo_breach"} record emitted through Sink.
	// Empty still emits the slo_breach record, just without file artifacts.
	IncidentDir string
	// ProfileWindow bounds the breach-time CPU profile (default 250ms).
	ProfileWindow time.Duration
	// AccessLog receives the sampled {"event":"access"} per-request records
	// (head + slow + error + every-64th); nil falls back to Sink, and no
	// access log is written when both are nil.
	AccessLog *obs.Sink
	// AccessHeadN, AccessEvery, and SlowThreshold tune the access sampler:
	// log the first AccessHeadN requests, every AccessEvery-th after that,
	// and everything at or over SlowThreshold (defaults 8, 64, and the
	// latency objective — 100ms when no objective is set).
	AccessHeadN   int
	AccessEvery   int
	SlowThreshold time.Duration

	// ShutdownTimeout bounds the graceful drain on Close (default 5s).
	ShutdownTimeout time.Duration

	// sloNow injects the SLO tracker's clock (tests only; default time.Now).
	sloNow func() time.Time
}

// predKey identifies one memoized prediction. The registry generation is part
// of the key, so a hot reload can never serve a latency from a retired model
// even if an entry survives the reload-time purge.
type predKey struct {
	model  string
	gen    uint64
	bench  string
	layers int
	lo, hi int
}

// benchKey identifies one lazily-built benchmark model + encoder pair.
type benchKey struct {
	name   string
	layers int
}

type benchEntry struct {
	model    *models.Model
	enc      *predictor.Encoder
	segments int
}

// Server is the predictor-as-a-service daemon: an HTTP server multiplexing
// /predict, /models, and /reload next to the standard telemetry endpoints
// (/metrics, /healthz, /debug/flightrecorder, /debug/pprof/) on one listener.
type Server struct {
	cfg      Config
	registry *Registry
	coal     *coalescer
	cache    *lru.Cache[predKey, float64]
	benches  *lru.Cache[benchKey, *benchEntry]
	obsSrv   *obs.Server
	acc      *obs.AccuracyMonitor
	trace    *obs.TraceContext

	// f32 maps each loaded predictor to its float32 engine when cfg.Float32
	// is set; rebuilt on every registry load and read lock-free by the
	// coalescer. nil (never stored) when float32 serving is off.
	f32 atomic.Pointer[map[predictor.Trained]*predictor.Float32Predictor]

	slo       *obs.SLOTracker
	incidents *incidentCapture
	sampler   *accessSampler
	access    *obs.Sink
	start     time.Time

	hits   *obs.Counter
	misses *obs.Counter

	// reloadMu serializes Reload so the registry swap and the memo purge are
	// one unit — a lookup between them sees either the old generation with
	// old entries or the new generation with an empty memo.
	reloadMu sync.Mutex

	closeOnce sync.Once
	closeErr  error
}

// Start loads the model registry and begins serving. It fails fast when the
// model directory is unreadable or holds a corrupt model — a daemon that
// cannot answer its first query should not come up.
func Start(ctx context.Context, cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 4096
	}
	if cfg.Trace == nil {
		cfg.Trace = obs.NewTraceContext(1, "serve")
	}
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(cfg.ModelDir, cfg.Metrics),
		coal:     newCoalescer(cfg.MaxBatch, cfg.Window, cfg.Workers, cfg.Metrics),
		cache:    lru.New[predKey, float64](cfg.CacheSize),
		benches:  lru.New[benchKey, *benchEntry](16),
		trace:    cfg.Trace,
		acc:      cfg.Acc,
		start:    time.Now(),
		hits:     cfg.Metrics.Counter(CacheHitsMetric),
		misses:   cfg.Metrics.Counter(CacheMissesMetric),
	}
	if cfg.SLOP99 > 0 || cfg.SLOErr > 0 {
		s.incidents = newIncidentCapture(cfg.IncidentDir, cfg.ProfileWindow, cfg.Flight, cfg.Sink, cfg.Log)
		s.slo = obs.NewSLOTracker(obs.SLOConfig{
			P99Objective: cfg.SLOP99.Seconds(),
			ErrObjective: cfg.SLOErr,
			MinSamples:   cfg.SLOMinSamples,
			Now:          cfg.sloNow,
			Metrics:      cfg.Metrics,
			OnBreach:     s.incidents.onBreach,
		})
	}
	slow := cfg.SlowThreshold
	if slow <= 0 {
		if cfg.SLOP99 > 0 {
			slow = cfg.SLOP99
		} else {
			slow = 100 * time.Millisecond
		}
	}
	s.sampler = newAccessSampler(cfg.AccessHeadN, cfg.AccessEvery, slow)
	s.access = cfg.AccessLog
	if s.access == nil {
		s.access = cfg.Sink
	}
	if s.acc == nil && cfg.Metrics != nil {
		s.acc = obs.NewAccuracyMonitor(obs.AccuracyConfig{
			Metrics: cfg.Metrics, Log: cfg.Log, MinSamples: 1,
		})
	}
	if _, _, err := s.registry.Load(); err != nil {
		return nil, err
	}
	if err := s.buildFloat32(); err != nil {
		return nil, err
	}
	if cfg.Float32 {
		s.coal.float32For = func(tr predictor.Trained) *predictor.Float32Predictor {
			if m := s.f32.Load(); m != nil {
				return (*m)[tr]
			}
			return nil
		}
	}
	s.coal.start()
	cfg.Metrics.SetRunInfo(cfg.Trace)
	srv, err := obs.StartServer(ctx, obs.ServerConfig{
		Addr:     cfg.Addr,
		Registry: cfg.Metrics,
		Flight:   cfg.Flight,
		Handlers: map[string]http.Handler{
			"/predict": s.instrument("/predict", s.handlePredict),
			"/models":  s.instrument("/models", s.handleModels),
			"/reload":  s.instrument("/reload", s.handleReload),
			"/statusz": s.instrument("/statusz", s.handleStatusz),
		},
		ShutdownTimeout: cfg.ShutdownTimeout,
	})
	if err != nil {
		s.coal.close()
		return nil, err
	}
	s.obsSrv = srv
	if cfg.Log != nil {
		cfg.Log.Printf("serving %d model(s) from %s on %s", s.registry.Len(), cfg.ModelDir, srv.Addr())
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.obsSrv.Addr() }

// URL returns the server's base URL.
func (s *Server) URL() string { return s.obsSrv.URL() }

// Registry returns the model registry (for tests and the SIGHUP handler).
func (s *Server) Registry() *Registry { return s.registry }

// Reload re-scans the model directory and purges the latency memo. On error
// the old snapshot keeps serving and the memo is left intact.
func (s *Server) Reload() (gen uint64, n int, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	gen, n, err = s.registry.Load()
	if err != nil {
		return gen, n, err
	}
	if err := s.buildFloat32(); err != nil {
		return gen, n, err
	}
	s.cache.Purge()
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("reloaded: generation %d, %d model(s)", gen, n)
	}
	s.cfg.Flight.Note("reload", fmt.Sprintf("generation %d, %d model(s)", gen, n))
	return gen, n, nil
}

// buildFloat32 snapshots every registry entry into a float32 inference
// engine. Called after each successful registry load so the engine map always
// covers the generation about to serve; a no-op unless Config.Float32 is set.
func (s *Server) buildFloat32() error {
	if !s.cfg.Float32 {
		return nil
	}
	entries, _ := s.registry.Snapshot()
	m := make(map[predictor.Trained]*predictor.Float32Predictor, len(entries))
	for _, e := range entries {
		f, err := e.Trained.Float32()
		if err != nil {
			return fmt.Errorf("serve: building float32 engine for %s: %w", e.Key, err)
		}
		m[e.Trained] = f
	}
	s.f32.Store(&m)
	return nil
}

// Close shuts the HTTP listener down (draining in-flight requests), then
// stops the coalescer and waits for any in-flight incident capture, so a
// breach right before shutdown still gets its evidence bundle. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.obsSrv.Close()
		s.coal.close()
		s.incidents.drain()
	})
	return s.closeErr
}

// instrument wraps an endpoint handler with the per-endpoint latency
// histogram and the per-endpoint, per-status request counter. The handler
// returns the status code it wrote and fills ri with the request's span and
// phase evidence; the wrapper turns those into a latency exemplar, an SLO
// observation (/predict only — listings and reloads have no latency
// objective), and a sampled access-log record.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request, *reqInfo) int) http.Handler {
	hist := s.cfg.Metrics.HistogramWith(RequestSecondsMetric, requestSecondsBuckets,
		obs.Label{Key: "endpoint", Value: endpoint})
	isPredict := endpoint == "/predict"
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var ri reqInfo
		code := h(w, r, &ri)
		dur := time.Since(start)
		trace, span := ri.span.RawIDs()
		hist.ObserveEx(dur.Seconds(), trace, span)
		s.cfg.Metrics.CounterWith(RequestsMetric,
			obs.Label{Key: "endpoint", Value: endpoint},
			obs.Label{Key: "code", Value: fmt.Sprint(code)}).Inc()
		if isPredict {
			s.slo.Observe(dur.Seconds(), code >= 500, trace, span)
			s.logAccess(&ri, code, start, dur)
		}
	})
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
	return code
}

// writeErr writes an ErrorResponse.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) int {
	return writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// benchFor resolves (and memoizes) the benchmark model + encoder for a
// request's bench/layers pair. Building GPT-3's 26-segment graph is cheap but
// not free; with the LRU every steady-state request hits the cache.
func (s *Server) benchFor(cfg models.Config) *benchEntry {
	be, _ := s.benches.GetOrCompute(benchKey{name: cfg.Name, layers: cfg.Layers}, func() *benchEntry {
		m := models.Build(cfg)
		return &benchEntry{model: m, enc: predictor.NewEncoder(m, true), segments: m.NumSegments()}
	})
	return be
}

// handlePredict answers POST /predict: resolve the model, memo-check, else
// encode the stage and join a coalesced batch. The request span is created
// before validation so even rejected requests carry trace ids through the
// access log and the latency exemplars.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, ri *reqInfo) int {
	span := s.trace.Child("predict")
	ri.span = span
	if r.Method != http.MethodPost {
		return writeErr(w, http.StatusMethodNotAllowed, "POST only")
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxRequestBytes+1))
	if err != nil {
		return writeErr(w, http.StatusBadRequest, "reading body: %v", err)
	}
	if len(body) > MaxRequestBytes {
		return writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", MaxRequestBytes)
	}
	req, err := DecodePredictRequest(body)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, "%v", err)
	}
	entry, gen, ok := s.registry.Lookup(req.Model)
	if !ok {
		if s.registry.Len() == 0 {
			return writeErr(w, http.StatusServiceUnavailable, "no models loaded")
		}
		return writeErr(w, http.StatusNotFound, "unknown model %q", req.Model)
	}
	benchCfg, _ := benchConfig(req.Bench, req.Layers)
	be := s.benchFor(benchCfg)
	if req.Hi > be.segments {
		return writeErr(w, http.StatusBadRequest,
			"hi %d exceeds %s's %d segments (layers=%d)", req.Hi, benchCfg.Name, be.segments, benchCfg.Layers)
	}

	ri.model, ri.bench, ri.lo, ri.hi = entry.Key, benchCfg.Name, req.Lo, req.Hi
	key := predKey{model: entry.Key, gen: gen, bench: benchCfg.Name,
		layers: benchCfg.Layers, lo: req.Lo, hi: req.Hi}
	latency, cached := s.cache.Get(key)
	if cached {
		s.hits.Inc()
		ri.cached = true
	} else {
		s.misses.Inc()
		enc := be.enc.Encode(stage.Spec{Lo: req.Lo, Hi: req.Hi})
		job, err := s.coal.submit(entry.Trained, enc)
		if err != nil {
			return writeErr(w, http.StatusServiceUnavailable, "%v", err)
		}
		ri.job = job
		latency = job.out
		s.cache.Put(key, latency)
	}

	resp := PredictResponse{
		TraceID: span.TraceID(), SpanID: span.SpanID(),
		Model: entry.Key, Family: entry.Family,
		Bench: benchCfg.Name, Layers: benchCfg.Layers,
		Lo: req.Lo, Hi: req.Hi,
		LatencySeconds: latency, LatencyMS: latency * 1e3,
		Cached: cached, Generation: gen,
	}
	if gt := req.GroundTruth; gt != nil {
		relErr := math.Abs(latency-*gt) / *gt * 100
		resp.RelErrPct = &relErr
		if s.acc != nil {
			s.acc.Observe(obs.AccuracyKey{
				Family: entry.Family, Mesh: req.Mesh, Op: benchCfg.Name,
			}, latency, *gt)
		}
	}
	if s.cfg.Sink != nil {
		// The sink splices the run-level trace_id/span_id as leading fields;
		// the per-request child span gets its own key to avoid a duplicate.
		s.cfg.Sink.Emit(map[string]any{
			"event": "predict", "request_span_id": span.SpanID(),
			"model": entry.Key, "bench": benchCfg.Name,
			"lo": req.Lo, "hi": req.Hi,
			"latency_s": latency, "cached": cached, "generation": gen,
		})
	}
	s.cfg.Flight.Note("predict", fmt.Sprintf("%s %s[%d,%d) -> %.6gs (cached=%v)",
		entry.Key, benchCfg.Name, req.Lo, req.Hi, latency, cached))
	return writeJSON(w, http.StatusOK, resp)
}

// modelInfo is one /models listing row.
type modelInfo struct {
	Key    string `json:"key"`
	Family string `json:"family"`
	Path   string `json:"path"`
}

// handleModels answers GET /models with the resident registry snapshot.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request, _ *reqInfo) int {
	if r.Method != http.MethodGet {
		return writeErr(w, http.StatusMethodNotAllowed, "GET only")
	}
	entries, gen := s.registry.Snapshot()
	infos := make([]modelInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, modelInfo{Key: e.Key, Family: e.Family, Path: e.Path})
	}
	return writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen, "models": infos,
	})
}

// handleReload answers POST /reload by re-scanning the model directory.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request, _ *reqInfo) int {
	if r.Method != http.MethodPost {
		return writeErr(w, http.StatusMethodNotAllowed, "POST only")
	}
	gen, n, err := s.Reload()
	if err != nil {
		return writeErr(w, http.StatusInternalServerError, "%v", err)
	}
	return writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen, "models": n,
	})
}
