package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"testing"

	"predtop/internal/cluster"
	"predtop/internal/graphnn"
	"predtop/internal/models"
	"predtop/internal/obs"
	"predtop/internal/predictor"
	"predtop/internal/sim"
)

// testLayers keeps test benchmark graphs small: embed + 4 decoders + head.
const testLayers = 4

// testBenchCfg is the benchmark config every test request resolves to.
func testBenchCfg() models.Config {
	cfg := models.GPT3()
	cfg.Layers = testLayers
	return cfg
}

// trainTestModel fits a tiny predictor of the given architecture on a small
// GPT-3 dataset — just enough training for deterministic, finite outputs.
func trainTestModel(t testing.TB, arch string, seed int64) predictor.Trained {
	t.Helper()
	m := models.Build(testBenchCfg())
	rng := rand.New(rand.NewSource(seed))
	specs := predictor.CollectStages(m, rng, 10, 3)
	enc := predictor.NewEncoder(m, true)
	sc := cluster.Scenarios(cluster.Platform1())[0]
	ds := predictor.BuildDataset(enc, specs, sc, sim.DefaultProfiler())
	if len(ds.Samples) < 4 {
		t.Fatalf("only %d feasible samples", len(ds.Samples))
	}
	var trainIdx, valIdx []int
	for i := range ds.Samples {
		if i%4 == 3 {
			valIdx = append(valIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	var net graphnn.Model
	switch arch {
	case "gcn":
		net = graphnn.NewGCN(rng, graphnn.GCNConfig{Layers: 2, Dim: 16})
	case "gat":
		net = graphnn.NewGAT(rng, graphnn.GATConfig{Layers: 1, Dim: 8, Heads: 2})
	default:
		net = graphnn.NewDAGTransformer(rng,
			graphnn.TransformerConfig{Layers: 1, Dim: 16, Heads: 2, FFNDim: 32})
	}
	tr, _ := predictor.Train(net, ds, trainIdx, valIdx, predictor.TrainConfig{
		Epochs: 2, Patience: 2, BatchSize: 4, Seed: seed,
	})
	return tr
}

// writeTestModel trains arch and saves it under dir as key.predtop.
func writeTestModel(t testing.TB, dir, key, arch string, seed int64) predictor.Trained {
	t.Helper()
	tr := trainTestModel(t, arch, seed)
	if err := predictor.SaveFile(filepath.Join(dir, key+ModelExt), tr); err != nil {
		t.Fatalf("saving %s: %v", key, err)
	}
	return tr
}

// startTestServer starts a daemon over dir on an ephemeral port and registers
// its shutdown. mutate (optional) tweaks the config before Start.
func startTestServer(t testing.TB, dir string, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		ModelDir: dir,
		Metrics:  obs.NewRegistry(),
		Trace:    obs.NewTraceContext(7, "serve-test"),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Start(context.Background(), cfg)
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// postPredict POSTs req and decodes the response, returning the HTTP status.
func postPredict(t testing.TB, url string, req PredictRequest) (PredictResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /predict: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	var out PredictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("decoding response %q: %v", data, err)
		}
	}
	return out, resp.StatusCode
}
