package serve

import (
	"math"
	"sync"
	"testing"
	"time"

	"predtop/internal/models"
	"predtop/internal/obs"
	"predtop/internal/predictor"
	"predtop/internal/stage"
)

// TestServeFusedBatchMetrics: coalesced groups that ran the fused batched
// forward must be counted by predtop_serve_batch_fused_total and observed by
// the pad-waste histogram, while per-request results stay bitwise identical
// to direct PredictEncoded — the fused path is observable, never numerically
// visible.
func TestServeFusedBatchMetrics(t *testing.T) {
	dir := t.TempDir()
	tr := writeTestModel(t, dir, "tran", "tran", 1)
	metrics := obs.NewRegistry()
	s := startTestServer(t, dir, func(c *Config) {
		c.Metrics = metrics
		c.MaxBatch = 8
		c.Window = 2 * time.Millisecond // give the burst a chance to coalesce
	})

	m := models.Build(testBenchCfg())
	enc := predictor.NewEncoder(m, true)
	specs := []stage.Spec{{Lo: 0, Hi: 2}, {Lo: 1, Hi: 4}, {Lo: 3, Hi: 6}, {Lo: 0, Hi: 5}, {Lo: 2, Hi: 3}}
	want := make([]float64, len(specs))
	for i, sp := range specs {
		want[i] = tr.PredictEncoded(enc.Encode(sp))
	}

	var wg sync.WaitGroup
	errs := make(chan string, len(specs))
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp stage.Spec) {
			defer wg.Done()
			resp, code := postPredict(t, s.URL(), PredictRequest{
				Model: "tran", Bench: "GPT-3", Layers: testLayers, Lo: sp.Lo, Hi: sp.Hi,
			})
			if code != 200 {
				errs <- "non-200 response"
				return
			}
			if math.Float64bits(resp.LatencySeconds) != math.Float64bits(want[i]) {
				errs <- "served latency diverged from direct PredictEncoded"
			}
		}(i, sp)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	fused := metrics.Counter(BatchFusedMetric).Value()
	if fused < 1 {
		t.Fatalf("fused counter = %d, want >= 1 (DAGTransformer supports the batched forward)", fused)
	}
	batches := metrics.Counter(BatchesMetric).Value()
	if fused > batches {
		t.Fatalf("fused groups %d exceed total batches %d", fused, batches)
	}
	pw := metrics.Histogram(PadWasteMetric, padWasteBuckets)
	if pw.Count() != fused {
		t.Fatalf("pad-waste observations = %d, want one per fused group (%d)", pw.Count(), fused)
	}
	if sum := pw.Sum(); sum < 0 || sum > float64(pw.Count()) {
		t.Fatalf("pad-waste sum %v outside [0, count]: fractions must be in [0, 1)", sum)
	}
}

// TestServeFloat32Mode: with Config.Float32 set the daemon serves through the
// reduced-precision engine — bitwise equal to a locally built
// Float32Predictor over the same weights (the engine itself is
// deterministic), within the pinned tolerance of the float64 reference, and
// never counted as a fused float64 group. A reload must rebuild the engine
// map so the new generation keeps serving.
func TestServeFloat32Mode(t *testing.T) {
	dir := t.TempDir()
	tr := writeTestModel(t, dir, "tran", "tran", 1)
	metrics := obs.NewRegistry()
	s := startTestServer(t, dir, func(c *Config) {
		c.Metrics = metrics
		c.Float32 = true
	})

	f32, err := tr.Float32()
	if err != nil {
		t.Fatalf("Float32: %v", err)
	}
	m := models.Build(testBenchCfg())
	enc := predictor.NewEncoder(m, true)
	specs := []stage.Spec{{Lo: 0, Hi: 2}, {Lo: 1, Hi: 4}, {Lo: 3, Hi: 6}}
	for _, sp := range specs {
		e := enc.Encode(sp)
		resp, code := postPredict(t, s.URL(), PredictRequest{
			Model: "tran", Bench: "GPT-3", Layers: testLayers, Lo: sp.Lo, Hi: sp.Hi,
		})
		if code != 200 {
			t.Fatalf("[%d,%d): code = %d", sp.Lo, sp.Hi, code)
		}
		want := f32.PredictEncoded(e)
		if math.Float64bits(resp.LatencySeconds) != math.Float64bits(want) {
			t.Fatalf("[%d,%d): served %v != local float32 engine %v", sp.Lo, sp.Hi, resp.LatencySeconds, want)
		}
		ref := tr.PredictEncoded(e)
		if rel := math.Abs(resp.LatencySeconds-ref) / math.Max(math.Abs(ref), 1e-9); rel > 1e-3 {
			t.Fatalf("[%d,%d): float32 rel err %.2e vs float64 %v", sp.Lo, sp.Hi, rel, ref)
		}
	}
	if fused := metrics.Counter(BatchFusedMetric).Value(); fused != 0 {
		t.Fatalf("fused counter = %d in float32 mode, want 0 (f32 path is not the fused float64 forward)", fused)
	}

	// Reload rebuilds the engine map for the new generation.
	if _, _, err := s.Reload(); err != nil {
		t.Fatalf("reload: %v", err)
	}
	resp, code := postPredict(t, s.URL(), PredictRequest{
		Model: "tran", Bench: "GPT-3", Layers: testLayers, Lo: 0, Hi: 2,
	})
	if code != 200 {
		t.Fatalf("post-reload code = %d", code)
	}
	want := f32.PredictEncoded(enc.Encode(stage.Spec{Lo: 0, Hi: 2}))
	if math.Float64bits(resp.LatencySeconds) != math.Float64bits(want) {
		t.Fatalf("post-reload served %v != local float32 engine %v", resp.LatencySeconds, want)
	}
}
