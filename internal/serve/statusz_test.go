package serve

import (
	"strings"
	"testing"
	"time"

	"predtop/internal/obs"
)

// TestRenderStatuszGolden pins the /statusz page byte-for-byte for a fixed
// snapshot — the renderer is a pure function of statuszData, so this is the
// layout contract operators' eyes (and any scraping one-liners) depend on.
func TestRenderStatuszGolden(t *testing.T) {
	d := statuszData{
		Addr:          "127.0.0.1:9400",
		ModelDir:      "/models",
		Models:        2,
		Generation:    3,
		UptimeSeconds: 75,
		QueueDepth:    1,
		BatchMax:      4,
		Batches:       37,
		BatchDist:     []statuszBucket{{LE: 1, Count: 12}, {LE: 2, Count: 20}, {LE: 4, Count: 5}},
		BatchOverflow: 0,
		CacheHits:     3,
		CacheMisses:   9,
		SLOEnabled:    true,
		SLO: obs.SLOSnapshot{
			P99Objective: 0.5,
			ErrObjective: 0.05,
			Breached:     true,
			Breaches:     2,
			Windows: []obs.SLOWindowStats{
				{Window: time.Minute, Total: 120, Errors: 1, Slow: 3,
					P50: 0.0016, P95: 0.0128, P99: 0.0256,
					ErrRate: 0.0083, BurnRate: 0.67, Breached: true},
				{Window: 5 * time.Minute, Total: 480, Errors: 1, Slow: 3,
					P50: 0.0016, P95: 0.0064, P99: 0.0128,
					ErrRate: 0.0021, BurnRate: 0.17, Breached: false},
			},
			Worst: []obs.WorstRequest{
				{LatencySeconds: 0.512, TraceID: "00000000000000ff", SpanID: "00000000000000aa", AtUnixNano: 1},
			},
		},
		Incidents: 2,
	}
	var b strings.Builder
	renderStatusz(&b, d)
	want := strings.Join([]string{
		"predtop-serve status",
		"",
		"addr:       127.0.0.1:9400",
		"model dir:  /models",
		"models:     2 (generation 3)",
		"uptime:     75s",
		"",
		"slo: p99 objective 0.5s, error budget 0.05",
		"state: BREACHED (2 breach(es), 2 incident bundle(s))",
		"window     total  errors   slow      p50_s      p95_s      p99_s  err_rate    burn",
		"1m0s         120       1      3     0.0016     0.0128     0.0256    0.0083    0.67",
		"5m0s         480       1      3     0.0016     0.0064     0.0128    0.0021    0.17",
		"worst recent requests:",
		"  0.512s  trace=00000000000000ff span=00000000000000aa",
		"",
		"queue depth: 1",
		"batch max:   4",
		"batches:     37",
		"batch sizes:",
		"  le 1      12",
		"  le 2      20",
		"  le 4      5",
		"cache:       3 hit(s), 9 miss(es)",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Errorf("statusz page drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRenderStatuszDisabled: without an SLO the page says so instead of
// rendering an empty verdict table.
func TestRenderStatuszDisabled(t *testing.T) {
	var b strings.Builder
	renderStatusz(&b, statuszData{Addr: "x", ModelDir: "y"})
	if !strings.Contains(b.String(), "slo: disabled") {
		t.Errorf("disabled page missing marker:\n%s", b.String())
	}
	if strings.Contains(b.String(), "BREACHED") {
		t.Errorf("disabled page renders a verdict:\n%s", b.String())
	}
}
