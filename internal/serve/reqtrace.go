package serve

import (
	"sync/atomic"
	"time"

	"predtop/internal/obs"
)

// accessSampler decides which finished /predict requests earn an access-log
// record. Logging every request would swamp the JSONL sink under replay load,
// so the sampler keeps the interesting subset: the first headN requests
// ("head" — startup behaviour), every request at or over the slow threshold
// ("slow"), every server error ("error"), and every every-th request after
// that ("rate" — a steady background sample). Decisions come from an atomic
// counter, never from randomness, so a fixed request order always samples the
// same requests. A nil sampler samples nothing.
type accessSampler struct {
	headN int64
	every int64
	slowS float64
	seen  atomic.Int64
}

func newAccessSampler(headN, every int, slow time.Duration) *accessSampler {
	if headN <= 0 {
		headN = 8
	}
	if every <= 0 {
		every = 64
	}
	return &accessSampler{headN: int64(headN), every: int64(every), slowS: slow.Seconds()}
}

// decide returns the sampling reason for one finished request, or "" to skip
// it. Error and slow requests always log; the head and rate tiers fill in the
// healthy baseline around them.
func (a *accessSampler) decide(durS float64, code int) string {
	if a == nil {
		return ""
	}
	n := a.seen.Add(1)
	switch {
	case code >= 500:
		return "error"
	case a.slowS > 0 && durS >= a.slowS:
		return "slow"
	case n <= a.headN:
		return "head"
	case n%a.every == 0:
		return "rate"
	}
	return ""
}

// reqInfo carries one request's identity and phase evidence from the handler
// back to the instrument wrapper: the request span (whose ids become the
// histogram exemplar and the SLO worst-offender entry), the resolved query,
// and — for requests that rode a batch — the coalescer job with its phase
// timestamps.
type reqInfo struct {
	span   *obs.TraceContext
	model  string
	bench  string
	lo, hi int
	cached bool
	job    *predictJob
}

// phaseRecord is one request phase in an access record: a named child span
// (deterministic id under the request span) and its duration.
type phaseRecord struct {
	Name   string `json:"name"`
	SpanID string `json:"span_id"`
	Us     int64  `json:"us"`
}

// logAccess emits one sampled {"event":"access"} record for a finished
// /predict request: status, query, total latency, and the per-phase breakdown
// enqueue → coalesce-wait → batch-assembly → forward → respond (or a single
// memo_hit phase for cached answers), each phase a child span of the request
// span so the record, the metric exemplars, and the SLO worst list all join
// on the same ids.
func (s *Server) logAccess(ri *reqInfo, code int, start time.Time, dur time.Duration) {
	if s.access == nil {
		return
	}
	reason := s.sampler.decide(dur.Seconds(), code)
	if reason == "" {
		return
	}
	rec := map[string]any{
		"event": "access", "endpoint": "/predict", "sampled": reason,
		"code": code, "total_us": dur.Microseconds(),
	}
	if ri.span != nil {
		rec["request_span_id"] = ri.span.SpanID()
	}
	if ri.model != "" {
		rec["model"] = ri.model
	}
	if ri.bench != "" {
		rec["bench"], rec["lo"], rec["hi"] = ri.bench, ri.lo, ri.hi
		rec["cached"] = ri.cached
	}
	var phases []phaseRecord
	addPhase := func(name string, d time.Duration) {
		if d < 0 {
			d = 0
		}
		phases = append(phases, phaseRecord{
			Name: name, SpanID: ri.span.Child(name).SpanID(), Us: d.Microseconds(),
		})
	}
	switch {
	case ri.job != nil:
		j := ri.job
		end := start.Add(dur)
		addPhase("enqueue", j.tEnq.Sub(start))        // decode, validate, encode
		addPhase("coalesce_wait", j.tDeq.Sub(j.tEnq)) // queued, batch not yet open
		addPhase("batch_assembly", j.tFwd0.Sub(j.tDeq))
		addPhase("forward", j.tFwd1.Sub(j.tFwd0))
		addPhase("respond", end.Sub(j.tFwd1))
		rec["batch_size"] = j.batchSize
	case ri.cached:
		addPhase("memo_hit", dur)
	}
	if phases != nil {
		rec["phases"] = phases
	}
	s.access.Emit(rec)
}
