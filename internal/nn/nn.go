// Package nn provides the neural-network building blocks used by the latency
// predictors: linear layers, layer normalization, masked multi-head
// attention, and feed-forward blocks, all built on internal/ag.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"predtop/internal/ag"
	"predtop/internal/tensor"
)

// Module is anything owning trainable parameters.
type Module interface {
	Params() []*ag.Param
}

// ParamCount returns the total number of scalar parameters in m.
func ParamCount(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.V.Size()
	}
	return n
}

// Linear is a dense layer y = x·W + b.
type Linear struct {
	W *ag.Param
	B *ag.Param
}

// NewLinear initializes a Linear layer with Xavier/Glorot-uniform weights.
func NewLinear(rng *rand.Rand, name string, in, out int) *Linear {
	bound := math.Sqrt(6.0 / float64(in+out))
	return &Linear{
		W: ag.NewParam(name+".W", tensor.RandUniform(rng, in, out, -bound, bound)),
		B: ag.NewParam(name+".b", tensor.New(1, out)),
	}
}

// Forward applies the layer to x (N×in) via the fused matmul+bias kernel.
func (l *Linear) Forward(ctx *ag.Context, x *ag.Node) *ag.Node {
	return ctx.Linear(x, ctx.Param(l.W), ctx.Param(l.B))
}

// Params implements Module.
func (l *Linear) Params() []*ag.Param { return []*ag.Param{l.W, l.B} }

// LayerNorm normalizes rows and applies a learned affine transform.
type LayerNorm struct {
	G   *ag.Param
	B   *ag.Param
	Eps float64
}

// NewLayerNorm returns a LayerNorm over dim features (gamma=1, beta=0).
func NewLayerNorm(name string, dim int) *LayerNorm {
	return &LayerNorm{
		G:   ag.NewParam(name+".gamma", tensor.Full(1, dim, 1)),
		B:   ag.NewParam(name+".beta", tensor.New(1, dim)),
		Eps: 1e-5,
	}
}

// Forward normalizes x (N×dim).
func (l *LayerNorm) Forward(ctx *ag.Context, x *ag.Node) *ag.Node {
	return ctx.LayerNorm(x, ctx.Param(l.G), ctx.Param(l.B), l.Eps)
}

// Params implements Module.
func (l *LayerNorm) Params() []*ag.Param { return []*ag.Param{l.G, l.B} }

// MultiHeadAttention is standard scaled dot-product attention over node
// sequences with an additive logit mask (the DAG reachability mask, Eqn 1 of
// the paper, or a neighbourhood mask for GAT-style restriction).
type MultiHeadAttention struct {
	Heads int
	Dim   int
	Wq    *Linear
	Wk    *Linear
	Wv    *Linear
	Wo    *Linear
}

// NewMultiHeadAttention builds attention over dim features with the given
// number of heads; dim must divide evenly by heads.
func NewMultiHeadAttention(rng *rand.Rand, name string, dim, heads int) *MultiHeadAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: dim %d not divisible by heads %d", dim, heads))
	}
	return &MultiHeadAttention{
		Heads: heads,
		Dim:   dim,
		Wq:    NewLinear(rng, name+".q", dim, dim),
		Wk:    NewLinear(rng, name+".k", dim, dim),
		Wv:    NewLinear(rng, name+".v", dim, dim),
		Wo:    NewLinear(rng, name+".o", dim, dim),
	}
}

// Forward computes attention over x (N×dim); mask (N×N, may be nil) is added
// to the attention logits with −Inf disabling positions (Eqn 1).
func (m *MultiHeadAttention) Forward(ctx *ag.Context, x *ag.Node, mask *tensor.Tensor) *ag.Node {
	q := m.Wq.Forward(ctx, x)
	k := m.Wk.Forward(ctx, x)
	v := m.Wv.Forward(ctx, x)
	dk := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	heads := make([]*ag.Node, m.Heads)
	for h := 0; h < m.Heads; h++ {
		lo, hi := h*dk, (h+1)*dk
		qh := ctx.SliceCols(q, lo, hi)
		kh := ctx.SliceCols(k, lo, hi)
		vh := ctx.SliceCols(v, lo, hi)
		// Scaling and softmax both overwrite the score buffer in place:
		// MatMulBT's backward reads its inputs, never its output, so the
		// raw scores are dead the moment they are produced.
		scores := ctx.ScaleInPlace(ctx.MatMulBT(qh, kh), scale)
		attn := ctx.SoftmaxRowsInPlace(scores, mask)
		heads[h] = ctx.MatMul(attn, vh)
	}
	return m.Wo.Forward(ctx, ctx.ConcatCols(heads...))
}

// Params implements Module.
func (m *MultiHeadAttention) Params() []*ag.Param {
	var ps []*ag.Param
	for _, l := range []*Linear{m.Wq, m.Wk, m.Wv, m.Wo} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// FeedForward is the transformer position-wise FFN: Linear→ReLU→Linear.
type FeedForward struct {
	In  *Linear
	Out *Linear
}

// NewFeedForward builds an FFN expanding dim→hidden→dim.
func NewFeedForward(rng *rand.Rand, name string, dim, hidden int) *FeedForward {
	return &FeedForward{
		In:  NewLinear(rng, name+".in", dim, hidden),
		Out: NewLinear(rng, name+".out", hidden, dim),
	}
}

// Forward applies the FFN row-wise.
func (f *FeedForward) Forward(ctx *ag.Context, x *ag.Node) *ag.Node {
	return f.Out.Forward(ctx, ctx.ReLU(f.In.Forward(ctx, x)))
}

// Params implements Module.
func (f *FeedForward) Params() []*ag.Param {
	return append(f.In.Params(), f.Out.Params()...)
}

// MLPHead is the prediction head used after pooling: a stack of ReLU linear
// layers followed by a single-output layer.
type MLPHead struct {
	Hidden []*Linear
	Out    *Linear
}

// NewMLPHead builds in→dims[0]→…→dims[k−1]→1 with ReLU between layers.
func NewMLPHead(rng *rand.Rand, name string, in int, dims ...int) *MLPHead {
	h := &MLPHead{}
	prev := in
	for i, d := range dims {
		h.Hidden = append(h.Hidden, NewLinear(rng, fmt.Sprintf("%s.h%d", name, i), prev, d))
		prev = d
	}
	h.Out = NewLinear(rng, name+".out", prev, 1)
	return h
}

// Forward maps x (N×in) to an N×1 prediction.
func (h *MLPHead) Forward(ctx *ag.Context, x *ag.Node) *ag.Node {
	for _, l := range h.Hidden {
		x = ctx.ReLU(l.Forward(ctx, x))
	}
	return h.Out.Forward(ctx, x)
}

// Params implements Module.
func (h *MLPHead) Params() []*ag.Param {
	var ps []*ag.Param
	for _, l := range h.Hidden {
		ps = append(ps, l.Params()...)
	}
	return append(ps, h.Out.Params()...)
}

// SinusoidalPE returns a maxPos×dim table of fixed sinusoidal positional
// encodings (Vaswani et al.), used for DAGPE depth encodings.
func SinusoidalPE(maxPos, dim int) *tensor.Tensor {
	pe := tensor.New(maxPos, dim)
	for pos := 0; pos < maxPos; pos++ {
		row := pe.Row(pos)
		for i := 0; i < dim; i += 2 {
			freq := math.Pow(10000, -float64(i)/float64(dim))
			row[i] = math.Sin(float64(pos) * freq)
			if i+1 < dim {
				row[i+1] = math.Cos(float64(pos) * freq)
			}
		}
	}
	return pe
}
