// Batched forwards: each building block gains a ForwardBatch twin that runs
// B stacked graphs through the segmented/panel tape ops of internal/ag. Per
// graph, results are bitwise identical to Forward on the graph alone — the
// batched ops share their inner kernels with the serial path.
package nn

import (
	"math"

	"predtop/internal/ag"
	"predtop/internal/tensor"
)

// ForwardBatch applies the layer to every panel's real rows of the stacked x.
func (l *Linear) ForwardBatch(ctx *ag.Context, x *ag.Node, bl tensor.BatchLayout) *ag.Node {
	return ctx.SegLinear(x, l.W, l.B, bl)
}

// ForwardBatch normalizes every panel's real rows of the stacked x.
func (l *LayerNorm) ForwardBatch(ctx *ag.Context, x *ag.Node, bl tensor.BatchLayout) *ag.Node {
	return ctx.SegLayerNorm(x, l.G, l.B, l.Eps, bl)
}

// ForwardBatch computes masked attention independently inside every panel of
// the stacked x; masks[g] is graph g's additive Nᵍ×Nᵍ logit mask (−Inf
// disables; nil masks none for that graph).
func (m *MultiHeadAttention) ForwardBatch(ctx *ag.Context, x *ag.Node, masks []*tensor.Tensor, bl tensor.BatchLayout) *ag.Node {
	q := m.Wq.ForwardBatch(ctx, x, bl)
	k := m.Wk.ForwardBatch(ctx, x, bl)
	v := m.Wv.ForwardBatch(ctx, x, bl)
	dk := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	heads := make([]*ag.Node, m.Heads)
	for h := 0; h < m.Heads; h++ {
		lo, hi := h*dk, (h+1)*dk
		qh := ctx.SliceCols(q, lo, hi)
		kh := ctx.SliceCols(k, lo, hi)
		vh := ctx.SliceCols(v, lo, hi)
		// In-place scaling and softmax are safe for the same reason as the
		// serial path: the producing ops differentiate through their inputs,
		// never their outputs.
		scores := ctx.ScaleInPlace(ctx.PanelMatMulBT(qh, kh, bl), scale)
		attn := ctx.PanelSoftmaxInPlace(scores, masks, bl)
		heads[h] = ctx.PanelMatMul(attn, vh, bl)
	}
	return m.Wo.ForwardBatch(ctx, ctx.ConcatCols(heads...), bl)
}

// ForwardBatch applies the FFN to every panel's real rows of the stacked x.
func (f *FeedForward) ForwardBatch(ctx *ag.Context, x *ag.Node, bl tensor.BatchLayout) *ag.Node {
	return f.Out.ForwardBatch(ctx, ctx.ReLU(f.In.ForwardBatch(ctx, x, bl)), bl)
}

// ForwardBatch maps the pooled B×in tensor to B×1 predictions. bl is the
// stride-1 head layout (every row is one graph), which keeps the head's
// parameter gradients sharded per graph like every other layer.
func (h *MLPHead) ForwardBatch(ctx *ag.Context, x *ag.Node, bl tensor.BatchLayout) *ag.Node {
	for _, l := range h.Hidden {
		x = ctx.ReLU(l.ForwardBatch(ctx, x, bl))
	}
	return h.Out.ForwardBatch(ctx, x, bl)
}
