package nn

import (
	"math"
	"math/rand"
	"testing"

	"predtop/internal/ag"
	"predtop/internal/tensor"
)

func TestLinearShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, "l", 5, 3)
	ctx := ag.NewContext()
	y := l.Forward(ctx, ctx.Const(tensor.Randn(rng, 7, 5, 1)))
	if y.V.R != 7 || y.V.C != 3 {
		t.Fatalf("linear output %dx%d", y.V.R, y.V.C)
	}
	if got := ParamCount(l); got != 5*3+3 {
		t.Fatalf("param count %d", got)
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, "l", 4, 2)
	x := tensor.Randn(rng, 3, 4, 1)
	y := tensor.Randn(rng, 3, 2, 1)
	build := func(ctx *ag.Context) *ag.Node {
		return ctx.MSELoss(l.Forward(ctx, ctx.Const(x)), y)
	}
	loss := func() float64 { return build(ag.NewContext()).V.At(0, 0) }
	grads := func() map[*ag.Param]*tensor.Tensor { return ag.CollectGrads(l.Params(), build) }
	if err := ag.GradCheck(l.Params(), loss, grads, 1e-6, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ln := NewLayerNorm("ln", 8)
	ctx := ag.NewContext()
	x := tensor.Randn(rng, 4, 8, 3)
	y := ln.Forward(ctx, ctx.Const(x))
	for i := 0; i < y.V.R; i++ {
		mean, varr := 0.0, 0.0
		for _, v := range y.V.Row(i) {
			mean += v
		}
		mean /= 8
		for _, v := range y.V.Row(i) {
			varr += (v - mean) * (v - mean)
		}
		varr /= 8
		if math.Abs(mean) > 1e-9 || math.Abs(varr-1) > 1e-3 {
			t.Fatalf("row %d mean=%g var=%g", i, mean, varr)
		}
	}
}

func TestMHAShapesAndMask(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMultiHeadAttention(rng, "mha", 16, 4)
	ctx := ag.NewContext()
	x := tensor.Randn(rng, 6, 16, 1)
	y := m.Forward(ctx, ctx.Const(x), nil)
	if y.V.R != 6 || y.V.C != 16 {
		t.Fatalf("MHA output %dx%d", y.V.R, y.V.C)
	}
	// With a mask allowing only self-attention every output row i must be
	// independent of other rows: perturbing row j≠i must not change row i.
	inf := math.Inf(-1)
	mask := tensor.Full(6, 6, inf)
	for i := 0; i < 6; i++ {
		mask.Set(i, i, 0)
	}
	ctx2 := ag.NewContext()
	base := m.Forward(ctx2, ctx2.Const(x), mask).V.Clone()
	x2 := x.Clone()
	for j := 0; j < 16; j++ {
		x2.Set(3, j, x2.At(3, j)+5)
	}
	ctx3 := ag.NewContext()
	pert := m.Forward(ctx3, ctx3.Const(x2), mask).V
	for i := 0; i < 6; i++ {
		if i == 3 {
			continue
		}
		for j := 0; j < 16; j++ {
			if math.Abs(base.At(i, j)-pert.At(i, j)) > 1e-9 {
				t.Fatalf("row %d leaked attention to masked row 3", i)
			}
		}
	}
}

func TestMHAGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMultiHeadAttention(rng, "mha", 8, 2)
	x := tensor.Randn(rng, 4, 8, 1)
	y := tensor.Randn(rng, 4, 8, 1)
	inf := math.Inf(-1)
	mask := tensor.New(4, 4)
	mask.Set(0, 2, inf)
	mask.Set(2, 0, inf)
	build := func(ctx *ag.Context) *ag.Node {
		return ctx.MSELoss(m.Forward(ctx, ctx.Const(x), mask), y)
	}
	loss := func() float64 { return build(ag.NewContext()).V.At(0, 0) }
	grads := func() map[*ag.Param]*tensor.Tensor { return ag.CollectGrads(m.Params(), build) }
	if err := ag.GradCheck(m.Params(), loss, grads, 1e-6, 1e-4); err != nil {
		t.Fatal(err)
	}
}

func TestMLPHeadAndFFN(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := NewFeedForward(rng, "ffn", 8, 16)
	h := NewMLPHead(rng, "head", 8, 4, 4)
	ctx := ag.NewContext()
	x := tensor.Randn(rng, 5, 8, 1)
	y := f.Forward(ctx, ctx.Const(x))
	if y.V.R != 5 || y.V.C != 8 {
		t.Fatalf("FFN output %dx%d", y.V.R, y.V.C)
	}
	p := h.Forward(ctx, ctx.Const(x))
	if p.V.R != 5 || p.V.C != 1 {
		t.Fatalf("head output %dx%d", p.V.R, p.V.C)
	}
}

func TestSinusoidalPE(t *testing.T) {
	pe := SinusoidalPE(10, 8)
	if pe.R != 10 || pe.C != 8 {
		t.Fatalf("PE shape %dx%d", pe.R, pe.C)
	}
	// Position 0 is sin(0)=0 / cos(0)=1 alternating.
	for j := 0; j < 8; j += 2 {
		if pe.At(0, j) != 0 || pe.At(0, j+1) != 1 {
			t.Fatalf("PE row 0 wrong at col %d", j)
		}
	}
	// Different positions must differ.
	if tensor.AllClose(tensor.FromSlice(1, 8, pe.Row(1)), tensor.FromSlice(1, 8, pe.Row(5)), 1e-9) {
		t.Fatal("PE rows 1 and 5 identical")
	}
	for _, v := range pe.Data {
		if v < -1-1e-12 || v > 1+1e-12 {
			t.Fatalf("PE value out of range: %v", v)
		}
	}
}
