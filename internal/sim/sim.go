// Package sim is the ground-truth execution-cost model that stands in for
// the paper's physical GPU platforms (A40 and RTX A5500 clusters).
//
// It costs tensor-level operators with a roofline model — compute-bound at a
// shape- and kind-dependent fraction of peak, or memory-bound at GDDR
// bandwidth — plus kernel-launch overheads, element-wise fusion, ring
// collectives over NVLink or Ethernet, and a deterministic per-(kernel,
// shape, device) efficiency perturbation. These are exactly the effects that
// make real profiles non-trivial for an additive white-box model while
// remaining learnable from graph structure, which is the property the
// paper's black-box comparison (GCN vs GAT vs DAG Transformer) exercises.
package sim

import (
	"hash/fnv"
	"math"

	"predtop/internal/cluster"
	"predtop/internal/ir"
)

// Exec costs operators on one mesh under one intra-operator parallelism
// configuration.
type Exec struct {
	Mesh   cluster.Mesh
	Config cluster.ParallelConfig
}

// NewExec returns an Exec for a scenario.
func NewExec(sc cluster.Scenario) Exec { return Exec{Mesh: sc.Mesh, Config: sc.Config} }

// Peak returns the device peak throughput for dt in FLOP/s.
func (e Exec) Peak(dt ir.DType) float64 {
	return e.Mesh.Platform.GPU.PeakTFLOPS[dt] * 1e12
}

// MPFabric returns the interconnect tensor/model-parallel collectives use:
// the NVLink bridge when the MP group fits inside a node, otherwise the
// inter-node network.
func (e Exec) MPFabric() cluster.Interconnect {
	if e.Config.ModelParallel <= e.Mesh.Platform.GPUsPerNode {
		return e.Mesh.Platform.IntraNode
	}
	return e.Mesh.Platform.InterNode
}

// DPFabric returns the interconnect data-parallel gradient synchronization
// uses: intra-node only when the whole configuration fits inside one node.
func (e Exec) DPFabric() cluster.Interconnect {
	if e.Config.Degree() <= e.Mesh.Platform.GPUsPerNode {
		return e.Mesh.Platform.IntraNode
	}
	return e.Mesh.Platform.InterNode
}

// jitter returns a deterministic efficiency perturbation in
// [1−amp, 1+amp] keyed by the operator's kind, shape, dtype, and the device
// context — the shape-specific kernel-selection quirks real GPUs exhibit.
func (e Exec) jitter(n *ir.Node, amp float64) float64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 64)
	put := func(v int) {
		for i := 0; i < 4; i++ {
			buf = append(buf, byte(v>>(8*i)))
		}
	}
	put(int(n.Kind))
	put(int(n.DType))
	for _, d := range n.Shape {
		put(d)
	}
	put(e.Mesh.Platform.Index)
	put(e.Mesh.Index)
	put(e.Config.DataParallel)
	put(e.Config.ModelParallel)
	h.Write(buf)
	u := float64(h.Sum64()%1_000_003) / 1_000_003.0
	return 1 - amp + 2*amp*u
}

// dotEfficiency models the achievable fraction of peak for a dot_general:
// small contraction or output tiles keep the tensor cores underfed.
func (e Exec) dotEfficiency(n *ir.Node) float64 {
	ash := n.Ins[0].Shape
	k := float64(ash[len(ash)-1])
	nOut := float64(n.Shape[len(n.Shape)-1])
	m := float64(1)
	if len(n.Shape) >= 2 {
		m = float64(n.Shape[len(n.Shape)-2])
	}
	eff := 0.72
	eff *= math.Min(1, math.Pow(k/512, 0.25))
	eff *= math.Min(1, math.Pow(nOut/128, 0.15))
	eff *= math.Min(1, math.Pow(m/128, 0.15))
	return eff * e.jitter(n, 0.10)
}

// OpTime returns the execution time in seconds of node n when its work is
// divided over shard devices. fused marks an element-wise operator fused
// into its producer's kernel (near-free: no launch, no extra memory pass).
func (e Exec) OpTime(n *ir.Node, shard int, fused bool) float64 {
	if n.Class != ir.ClassOperator || n.Kind.IsCollective() {
		return 0
	}
	gpu := e.Mesh.Platform.GPU
	launch := gpu.KernelLaunchUS * 1e-6
	flops := float64(n.Flops()) / float64(shard)

	bytes := float64(n.Bytes())
	for _, in := range n.Ins {
		bytes += float64(in.Bytes())
	}
	bytes /= float64(shard)

	var eff float64
	switch {
	case n.Kind == ir.KindDot:
		eff = e.dotEfficiency(n)
	case n.Kind == ir.KindGather || n.Kind == ir.KindScatter:
		// Irregular access: bandwidth-bound well below streaming rate.
		eff = 0.35 * e.jitter(n, 0.08)
	default:
		eff = 0.9 * e.jitter(n, 0.05)
	}

	compute := flops / (e.Peak(n.DType) * eff)
	memory := bytes / (gpu.MemBandwidthGBs * 1e9)
	if n.Kind != ir.KindDot {
		// Element-wise and data-movement kernels are bandwidth-bound; their
		// arithmetic is hidden under the memory streams.
		compute = 0
		memory /= eff
	}
	t := math.Max(compute, memory)
	if fused {
		return t * 0.08
	}
	return t + launch
}

// RingTime returns the time of a ring-based collective moving the given
// payload factor of bytes across devices over fabric f.
func ringTime(bytes float64, devices int, f cluster.Interconnect, passes float64) float64 {
	if devices <= 1 || bytes <= 0 {
		return 0
	}
	n := float64(devices)
	steps := passes * (n - 1)
	return steps*f.LatencyUS*1e-6 + passes*(n-1)/n*bytes/(f.BandwidthGBs*1e9)
}

// AllReduceTime returns the ring all-reduce time for bytes over devices.
func AllReduceTime(bytes float64, devices int, f cluster.Interconnect) float64 {
	return ringTime(bytes, devices, f, 2) // reduce-scatter + all-gather
}

// AllGatherTime returns the ring all-gather time for bytes over devices.
func AllGatherTime(bytes float64, devices int, f cluster.Interconnect) float64 {
	return ringTime(bytes, devices, f, 1)
}

// MPAllReduce returns the tensor-parallel activation all-reduce time for an
// activation of the given bytes under this configuration.
func (e Exec) MPAllReduce(bytes float64) float64 {
	return AllReduceTime(bytes, e.Config.ModelParallel, e.MPFabric())
}

// MPAllGather returns the tensor-parallel all-gather time.
func (e Exec) MPAllGather(bytes float64) float64 {
	return AllGatherTime(bytes, e.Config.ModelParallel, e.MPFabric())
}

// DPGradSync returns the per-iteration data-parallel gradient all-reduce
// time for a stage holding paramBytes of weights (already divided by any
// model-parallel sharding).
func (e Exec) DPGradSync(paramBytes float64) float64 {
	return AllReduceTime(paramBytes, e.Config.DataParallel, e.DPFabric())
}

// Fused reports whether operator n fuses into its producer: element-wise
// kernels fuse when their first operand comes from another operator that has
// no other consumer — otherwise the intermediate must be materialized. This
// is the context-dependent effect that rewards graph-structure-aware
// predictors over purely additive per-node models.
func Fused(n *ir.Node, consumerCount []int) bool {
	if !n.Kind.IsElementwise() || len(n.Ins) == 0 {
		return false
	}
	p := n.Ins[0]
	return p.Class == ir.ClassOperator && !p.Kind.IsCollective() && consumerCount[p.ID] == 1
}

// MemoryBytes estimates per-device memory for executing g: parameters (plus
// Adam optimizer state) divided by the model-parallel degree, and the two
// largest activation working sets divided by the data-parallel token split.
func (e Exec) MemoryBytes(g *ir.Graph) float64 {
	var params, act, maxAct float64
	for _, n := range g.Nodes {
		if n.Param {
			params += float64(n.Bytes())
			continue
		}
		if n.Class == ir.ClassOperator {
			b := float64(n.Bytes())
			act += b * 0.15 // live fraction under rematerialization
			if b > maxAct {
				maxAct = b
			}
		}
	}
	perDevParams := params * 4 / float64(e.Config.ModelParallel) // weight+grad+2 Adam moments
	perDevAct := (act + 2*maxAct) / float64(e.Config.Degree())
	return perDevParams + perDevAct
}

// FitsMemory reports whether g fits in device memory under e.
func (e Exec) FitsMemory(g *ir.Graph) bool {
	return e.MemoryBytes(g) <= e.Mesh.Platform.GPU.MemoryGB*1e9
}
