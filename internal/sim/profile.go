package sim

import (
	"hash/fnv"
	"math"

	"predtop/internal/ir"
	"predtop/internal/obs"
)

// Profiler models Alpa's stage-profiling procedure: each measurement carries
// small run-to-run noise, and obtaining it costs real wall-clock time —
// intra-operator optimization, XLA compilation, input transfer to the GPU,
// and warmup plus timed executions (§VIII-B enumerates these components).
type Profiler struct {
	// NoiseFrac is the relative standard deviation of measurement noise.
	NoiseFrac float64
	// Warmup and Trials are the untimed and timed executions per profile.
	Warmup, Trials int
	// Metrics, when non-nil, counts measurements (sim_measurements_total)
	// and accumulates simulated profiling cost (sim_profiles_total counter,
	// sim_profile_cost_seconds histogram). Profiler is copied by value;
	// copies share the registry.
	Metrics *obs.Registry
}

// DefaultProfiler mirrors typical profiling practice (±0.8 % noise,
// 2 warmup + 5 timed runs).
func DefaultProfiler() Profiler { return Profiler{NoiseFrac: 0.008, Warmup: 2, Trials: 5} }

// Measure returns a noisy observation of the true latency, deterministic in
// seed (so profiles are reproducible across processes).
func (p Profiler) Measure(trueLatency float64, seed uint64) float64 {
	p.Metrics.Counter("sim_measurements_total").Inc()
	if p.NoiseFrac == 0 {
		return trueLatency
	}
	// Deterministic gaussian via hashed Box-Muller.
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(seed >> (8 * i))
	}
	h.Write(buf[:])
	v := h.Sum64()
	u1 := (float64(v%1_000_003) + 1) / 1_000_004
	u2 := float64((v/1_000_003)%1_000_003) / 1_000_003
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return trueLatency * (1 + p.NoiseFrac*z)
}

// CompileSeconds models Alpa's per-stage intra-operator optimization and XLA
// compilation time, which grows with the operator count and the sharding
// search space (the dominant term of "full profiling" cost in Fig 10a).
func CompileSeconds(g *ir.Graph, e Exec) float64 {
	ops := 0
	dots := 0
	for _, n := range g.Nodes {
		if n.Class == ir.ClassOperator {
			ops++
			if n.Kind == ir.KindDot {
				dots++
			}
		}
	}
	// ILP/strategy enumeration grows with the per-dot strategy count under
	// model parallelism; base compilation is per-op.
	strategies := 1.0
	if e.Config.ModelParallel > 1 {
		strategies = 3.0
	}
	return 0.035*float64(ops) + 0.12*float64(dots)*strategies
}

// TransferSeconds models moving stage parameters and sample input to the
// devices before profiling (PCIe-class bandwidth).
func TransferSeconds(g *ir.Graph) float64 {
	var bytes float64
	for _, n := range g.Nodes {
		if n.Param || n.Class == ir.ClassInput {
			bytes += float64(n.Bytes())
		}
	}
	const pcieGBs = 12.0
	return bytes / (pcieGBs * 1e9)
}

// ProfileCostSeconds is the full wall-clock cost of profiling one stage on
// one mesh: compile + transfer + (warmup+trials) executions.
func (p Profiler) ProfileCostSeconds(g *ir.Graph, e Exec, trueLatency float64) float64 {
	cost := CompileSeconds(g, e) + TransferSeconds(g) + float64(p.Warmup+p.Trials)*trueLatency
	p.Metrics.Counter("sim_profiles_total").Inc()
	p.Metrics.Histogram("sim_profile_cost_seconds", nil).Observe(cost)
	return cost
}
