package sim

import (
	"math"
	"testing"

	"predtop/internal/cluster"
	"predtop/internal/ir"
	"predtop/internal/models"
)

func scenario(p cluster.Platform, meshIdx, confIdx int) cluster.Scenario {
	for _, sc := range cluster.Scenarios(p) {
		if sc.Mesh.Index == meshIdx && sc.Config.Index == confIdx {
			return sc
		}
	}
	panic("scenario not found")
}

func singleGPU() Exec { return NewExec(scenario(cluster.Platform2(), 1, 1)) }

func dotNode(m, k, n int) *ir.Node {
	b := ir.NewBuilder()
	x := b.Input("x", []int{m, k}, ir.BF16)
	w := b.Weight("w", []int{k, n}, ir.BF16)
	d := b.Dot(x, w)
	b.Output(d)
	g := b.Graph()
	return g.Nodes[d.ID]
}

func TestOpTimePositiveAndShardScaling(t *testing.T) {
	e := NewExec(scenario(cluster.Platform2(), 3, 3)) // 4-way MP
	n := dotNode(1024, 2048, 2048)
	t1 := e.OpTime(n, 1, false)
	t4 := e.OpTime(n, 4, false)
	if t1 <= 0 || t4 <= 0 {
		t.Fatalf("non-positive op times %v %v", t1, t4)
	}
	if t4 >= t1 {
		t.Fatal("sharding must reduce op time")
	}
	// Sub-linear scaling: launch overhead is not divided.
	if t4 < t1/4.5 {
		t.Fatalf("scaling too good: %v vs %v", t1, t4)
	}
}

func TestOpTimeLargeDotNearPeak(t *testing.T) {
	e := singleGPU()
	n := dotNode(4096, 4096, 4096)
	got := e.OpTime(n, 1, false)
	ideal := float64(n.Flops()) / e.Peak(ir.BF16)
	if got < ideal {
		t.Fatalf("faster than peak: %v < %v", got, ideal)
	}
	if got > ideal*4 {
		t.Fatalf("large matmul too inefficient: %v vs ideal %v", got, ideal)
	}
}

func TestSmallDotLessEfficient(t *testing.T) {
	e := singleGPU()
	big := dotNode(1024, 1024, 1024)
	small := dotNode(32, 32, 32)
	effBig := float64(big.Flops()) / e.Peak(ir.BF16) / e.OpTime(big, 1, false)
	effSmall := float64(small.Flops()) / e.Peak(ir.BF16) / e.OpTime(small, 1, false)
	if effSmall >= effBig {
		t.Fatalf("small dot should be less efficient: %v vs %v", effSmall, effBig)
	}
}

func TestFusedOpsMuchCheaper(t *testing.T) {
	e := singleGPU()
	b := ir.NewBuilder()
	x := b.Input("x", []int{1024, 2048}, ir.BF16)
	y := b.Unary(ir.KindExp, x)
	b.Output(y)
	n := y
	tUnfused := e.OpTime(n, 1, false)
	tFused := e.OpTime(n, 1, true)
	if tFused >= tUnfused/3 {
		t.Fatalf("fusion should be a large saving: %v vs %v", tFused, tUnfused)
	}
}

func TestFusedDetection(t *testing.T) {
	b := ir.NewBuilder()
	x := b.Input("x", []int{64, 64}, ir.F32)
	w := b.Weight("w", []int{64, 64}, ir.F32)
	d := b.Dot(x, w)
	e1 := b.Unary(ir.KindExp, d)   // fusable: sole consumer of d
	e2 := b.Unary(ir.KindTanh, e1) // fusable chain... but e1 has 2 consumers below
	e3 := b.Ewise(ir.KindAdd, e1, e2)
	b.Output(e3)
	g := b.Graph()
	consumers := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Ins {
			consumers[in.ID]++
		}
	}
	if !Fused(g.Nodes[e1.ID], consumers) {
		t.Fatal("exp after single-consumer dot should fuse")
	}
	if Fused(g.Nodes[e2.ID], consumers) {
		t.Fatal("tanh after multi-consumer exp must not fuse")
	}
	if Fused(g.Nodes[d.ID], consumers) {
		t.Fatal("dot is not an element-wise fusion candidate")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	e := singleGPU()
	n := dotNode(128, 256, 512)
	j1 := e.jitter(n, 0.1)
	j2 := e.jitter(n, 0.1)
	if j1 != j2 {
		t.Fatal("jitter must be deterministic")
	}
	if j1 < 0.9 || j1 > 1.1 {
		t.Fatalf("jitter %v out of bounds", j1)
	}
	// Different shapes give (almost surely) different jitter.
	m := dotNode(128, 256, 513)
	if e.jitter(n, 0.1) == e.jitter(m, 0.1) {
		t.Fatal("jitter should depend on shape")
	}
}

func TestCollectiveTimes(t *testing.T) {
	nv := cluster.Platform2().IntraNode
	eth := cluster.Platform2().InterNode
	b := 100e6 // 100 MB
	arNV := AllReduceTime(b, 2, nv)
	arEth := AllReduceTime(b, 2, eth)
	if arNV <= 0 || arEth <= arNV {
		t.Fatalf("ethernet all-reduce must be slower: %v vs %v", arEth, arNV)
	}
	if AllReduceTime(b, 1, nv) != 0 {
		t.Fatal("single-device all-reduce must be free")
	}
	if ag := AllGatherTime(b, 2, nv); ag >= arNV {
		t.Fatal("all-gather (1 pass) should beat all-reduce (2 passes)")
	}
	if AllReduceTime(2*b, 2, nv) <= arNV {
		t.Fatal("all-reduce must grow with payload")
	}
}

func TestFabricSelection(t *testing.T) {
	p2 := cluster.Platform2()
	// 4-way MP on mesh 3 spans nodes → inter-node fabric.
	e := NewExec(scenario(p2, 3, 3))
	if e.MPFabric() != p2.InterNode {
		t.Fatal("4-way MP should use inter-node fabric")
	}
	// 2-way MP of (dp2, mp2) fits in a node.
	e = NewExec(scenario(p2, 3, 2))
	if e.MPFabric() != p2.IntraNode {
		t.Fatal("2-way MP should use NVLink")
	}
	if e.DPFabric() != p2.InterNode {
		t.Fatal("DP groups of (2,2) span nodes")
	}
	// Mesh 2 (single node): everything intra.
	e = NewExec(scenario(p2, 2, 1))
	if e.DPFabric() != p2.IntraNode {
		t.Fatal("mesh-2 DP should use NVLink")
	}
}

func TestMemoryModel(t *testing.T) {
	m := models.Build(models.GPT3())
	full := m.StageGraph(0, m.NumSegments(), true)
	oneLayer := m.StageGraph(2, 3, true)

	p2single := NewExec(scenario(cluster.Platform2(), 1, 1))
	if p2single.FitsMemory(full) {
		t.Fatal("GPT-3 1.3B training must not fit on one 24 GB A5500")
	}
	if !p2single.FitsMemory(oneLayer) {
		t.Fatal("a single decoder layer must fit on an A5500")
	}
	// 4-way model parallelism shards the weights.
	p2mp4 := NewExec(scenario(cluster.Platform2(), 3, 3))
	if p2mp4.MemoryBytes(full) >= p2single.MemoryBytes(full) {
		t.Fatal("MP must reduce per-device memory")
	}
}

func TestMeasureNoise(t *testing.T) {
	p := DefaultProfiler()
	lat := 0.01
	m1 := p.Measure(lat, 42)
	m2 := p.Measure(lat, 42)
	if m1 != m2 {
		t.Fatal("measurement must be deterministic in seed")
	}
	if m1 == lat {
		t.Fatal("noise should perturb the measurement")
	}
	// Aggregate noise is small and unbiased-ish.
	sum, sumAbs := 0.0, 0.0
	for s := uint64(0); s < 500; s++ {
		d := p.Measure(lat, s)/lat - 1
		sum += d
		sumAbs += math.Abs(d)
	}
	if sumAbs/500 > 0.03 {
		t.Fatalf("noise too large: mean |δ| = %v", sumAbs/500)
	}
	if math.Abs(sum/500) > 0.01 {
		t.Fatalf("noise too biased: mean δ = %v", sum/500)
	}
}

func TestProfilingCostComponents(t *testing.T) {
	m := models.Build(models.GPT3())
	small := m.StageGraph(2, 3, true)
	big := m.StageGraph(2, 8, true)
	e := singleGPU()
	p := DefaultProfiler()
	cSmall := p.ProfileCostSeconds(small, e, 0.01)
	cBig := p.ProfileCostSeconds(big, e, 0.05)
	if cSmall <= 0 || cBig <= cSmall {
		t.Fatalf("profiling cost must grow with stage size: %v vs %v", cSmall, cBig)
	}
	// Compile time dominates short executions — the effect Fig 10a exploits.
	if CompileSeconds(small, e) < float64(p.Warmup+p.Trials)*0.01 {
		t.Fatal("compilation should dominate profiling of a fast stage")
	}
	// MP configurations search more strategies.
	eMP := NewExec(scenario(cluster.Platform2(), 2, 2))
	if CompileSeconds(small, eMP) <= CompileSeconds(small, e) {
		t.Fatal("MP compilation must cost more")
	}
}

func TestStageLatencyMagnitudePlausible(t *testing.T) {
	// A GPT-3 decoder layer (fwd+bwd, 1024 tokens) on an A40 should land in
	// the single-digit-millisecond range — the scale real profiles report.
	m := models.Build(models.GPT3())
	g := m.StageGraph(2, 3, true)
	e := NewExec(scenario(cluster.Platform1(), 1, 1))
	consumers := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Ins {
			consumers[in.ID]++
		}
	}
	total := 0.0
	for _, n := range g.Nodes {
		total += e.OpTime(n, 1, Fused(n, consumers))
	}
	if total < 0.5e-3 || total > 60e-3 {
		t.Fatalf("implausible layer latency %v s", total)
	}
}
