package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"predtop/internal/cluster"
	"predtop/internal/ir"
)

// TestOpTimeMonotoneInWork: a dot with strictly more work never costs less.
func TestOpTimeMonotoneInWork(t *testing.T) {
	e := singleGPU()
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 16 + rng.Intn(512)
		k := 16 + rng.Intn(512)
		n := 16 + rng.Intn(512)
		small := dotNode(m, k, n)
		big := dotNode(2*m, 2*k, 2*n)
		// Allow jitter headroom: 8× the flops with ±10% jitter must still
		// cost strictly more.
		return e.OpTime(big, 1, false) > e.OpTime(small, 1, false)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAllReduceMonotoneInBytes: more payload, more time, for any fabric.
func TestAllReduceMonotoneInBytes(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(2))}
	fabrics := []cluster.Interconnect{cluster.Platform2().IntraNode, cluster.Platform2().InterNode}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := 1e3 + rng.Float64()*1e8
		dev := 2 + rng.Intn(7)
		fab := fabrics[rng.Intn(2)]
		return AllReduceTime(2*b, dev, fab) > AllReduceTime(b, dev, fab) &&
			AllGatherTime(2*b, dev, fab) > AllGatherTime(b, dev, fab)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestShardingNeverSlower: dividing an op over more devices never increases
// its compute time.
func TestShardingNeverSlower(t *testing.T) {
	e := NewExec(scenario(cluster.Platform2(), 3, 3))
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := dotNode(64+rng.Intn(1024), 64+rng.Intn(1024), 64+rng.Intn(1024))
		t1 := e.OpTime(n, 1, false)
		t2 := e.OpTime(n, 2, false)
		t4 := e.OpTime(n, 4, false)
		return t4 <= t2 && t2 <= t1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestJitterBoundedForAllKinds: the efficiency perturbation stays within its
// amplitude for every operator kind.
func TestJitterBoundedForAllKinds(t *testing.T) {
	e := singleGPU()
	b := ir.NewBuilder()
	x := b.Input("x", []int{64, 64}, ir.F32)
	for k := ir.KindDot; k < ir.Kind(ir.NumKinds); k++ {
		n := &ir.Node{Kind: k, Class: ir.ClassOperator, Shape: []int{64, 64}, DType: ir.F32, Ins: []*ir.Node{x}}
		j := e.jitter(n, 0.1)
		if j < 0.9 || j > 1.1 {
			t.Fatalf("kind %v jitter %v", k, j)
		}
	}
}
