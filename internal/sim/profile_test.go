package sim

import (
	"testing"

	"predtop/internal/cluster"
	"predtop/internal/ir"
	"predtop/internal/models"
)

func TestOpTimeNonOperatorsFree(t *testing.T) {
	e := singleGPU()
	b := ir.NewBuilder()
	in := b.Input("x", []int{64, 64}, ir.F32)
	w := b.Weight("w", []int{64, 64}, ir.F32)
	ar := b.AllReduce(in)
	if e.OpTime(in, 1, false) != 0 || e.OpTime(w, 1, false) != 0 {
		t.Fatal("inputs/literals must not carry compute time")
	}
	if e.OpTime(ar, 1, false) != 0 {
		t.Fatal("collectives are costed by the collective model, not OpTime")
	}
}

func TestGatherSlowerThanElementwise(t *testing.T) {
	e := singleGPU()
	b := ir.NewBuilder()
	table := b.Weight("t", []int{50000, 512}, ir.F32)
	idx := b.Input("i", []int{1024}, ir.I32)
	g := b.Gather(table, idx, []int{1024, 512})
	ew := b.Unary(ir.KindExp, g)
	// Same output bytes, but gather's irregular access must cost more than
	// a streaming element-wise kernel over the same output.
	tg := e.OpTime(g, 1, false)
	te := e.OpTime(ew, 1, false)
	if tg <= te {
		t.Fatalf("gather (%v) should cost more than exp (%v)", tg, te)
	}
}

func TestConvertCostedByBandwidth(t *testing.T) {
	e := singleGPU()
	b := ir.NewBuilder()
	x := b.Input("x", []int{4096, 4096}, ir.F32)
	cv := b.Convert(x, ir.BF16)
	bytes := float64(x.Bytes() + cv.Bytes())
	ideal := bytes / (e.Mesh.Platform.GPU.MemBandwidthGBs * 1e9)
	got := e.OpTime(cv, 1, false)
	if got < ideal || got > ideal*3 {
		t.Fatalf("convert time %v vs bandwidth ideal %v", got, ideal)
	}
}

func TestDifferentPlatformsDifferentCosts(t *testing.T) {
	n := dotNode(1024, 2048, 2048)
	e1 := NewExec(scenario(cluster.Platform1(), 1, 1))
	e2 := NewExec(scenario(cluster.Platform2(), 1, 1))
	if e1.OpTime(n, 1, false) == e2.OpTime(n, 1, false) {
		t.Fatal("A40 and A5500 should not cost identically")
	}
}

func TestMemoryScalesWithStageLength(t *testing.T) {
	m := models.Build(models.GPT3())
	e := singleGPU()
	small := e.MemoryBytes(m.StageGraph(2, 3, true))
	big := e.MemoryBytes(m.StageGraph(2, 9, true))
	if big <= small {
		t.Fatalf("memory should grow with stage size: %v vs %v", small, big)
	}
}

func TestProfileCostGrowsWithLatency(t *testing.T) {
	m := models.Build(models.GPT3())
	g := m.StageGraph(2, 3, true)
	e := singleGPU()
	p := DefaultProfiler()
	slow := p.ProfileCostSeconds(g, e, 1.0)
	fast := p.ProfileCostSeconds(g, e, 0.001)
	if slow-fast < float64(p.Warmup+p.Trials)*0.9 {
		t.Fatalf("timed runs not reflected in cost: %v vs %v", slow, fast)
	}
}

func TestZeroNoiseProfiler(t *testing.T) {
	p := Profiler{NoiseFrac: 0, Warmup: 1, Trials: 1}
	if p.Measure(0.5, 99) != 0.5 {
		t.Fatal("zero-noise profiler must return the exact latency")
	}
}

func TestMeasurePositive(t *testing.T) {
	p := DefaultProfiler()
	for s := uint64(0); s < 2000; s++ {
		if p.Measure(0.01, s) <= 0 {
			t.Fatalf("non-positive measurement at seed %d", s)
		}
	}
}
