// Package lru provides the bounded least-recently-used cache shared by the
// caching layers of the repository: the planner's stage-encoding cache and
// the serving daemon's (graph, model) → latency memo both ride on it, so a
// single well-tested eviction policy bounds memory everywhere instead of
// per-package unbounded maps.
//
// The cache is a plain generic map plus an intrusive doubly-linked recency
// list; every operation is O(1). It is safe for concurrent use. Hit/miss
// accounting is left to callers (Get's second result), keeping the package
// free of observability dependencies.
package lru

import "sync"

// Cache is a bounded LRU map from K to V. The zero value is not usable; use
// New. A nil *Cache is inert: Get always misses and Put is a no-op, so an
// optional cache can be threaded without nil checks.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	m        map[K]*entry[K, V]
	// head.next is the most recently used entry, tail.prev the least;
	// head/tail are sentinels so list surgery never branches on nil.
	head, tail entry[K, V]
}

type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// New returns a cache holding at most capacity entries (capacity < 1 is
// treated as 1 — a bound of zero would make every Put a silent no-op, which
// no caller wants).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache[K, V]{capacity: capacity, m: make(map[K]*entry[K, V])}
	c.head.next = &c.tail
	c.tail.prev = &c.head
	return c
}

// Get returns the value cached under key and marks it most recently used.
// The second result is false on a miss (and always on a nil cache).
func (c *Cache[K, V]) Get(key K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return zero, false
	}
	c.moveToFront(e)
	return e.val, true
}

// Put stores val under key, marking it most recently used; when the cache is
// full the least recently used entry is evicted. No-op on a nil cache.
func (c *Cache[K, V]) Put(key K, val V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.val = val
		c.moveToFront(e)
		return
	}
	if len(c.m) >= c.capacity {
		lru := c.tail.prev
		c.unlink(lru)
		delete(c.m, lru.key)
	}
	e := &entry[K, V]{key: key, val: val}
	c.m[key] = e
	c.pushFront(e)
}

// GetOrCompute returns the cached value for key, computing and caching it on
// a miss. compute runs outside the cache lock, so concurrent misses on the
// same key may compute more than once (last write wins) — acceptable for the
// idempotent, deterministic computations this cache memoizes. The second
// result reports whether the value was already cached.
func (c *Cache[K, V]) GetOrCompute(key K, compute func() V) (V, bool) {
	if v, ok := c.Get(key); ok {
		return v, true
	}
	v := compute()
	c.Put(key, v)
	return v, false
}

// Len returns the number of cached entries (0 on nil).
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Cap returns the capacity bound (0 on nil).
func (c *Cache[K, V]) Cap() int {
	if c == nil {
		return 0
	}
	return c.capacity
}

// Purge drops every entry, e.g. when the values' producer was reloaded and
// cached results may be stale. No-op on nil.
func (c *Cache[K, V]) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.m)
	c.head.next = &c.tail
	c.tail.prev = &c.head
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = &c.head
	e.next = c.head.next
	e.prev.next = e
	e.next.prev = e
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *Cache[K, V]) moveToFront(e *entry[K, V]) {
	c.unlink(e)
	c.pushFront(e)
}
