package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestEvictionOrder(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if _, ok := c.Get(1); !ok { // 1 becomes MRU, 2 is now LRU
		t.Fatal("missing 1")
	}
	c.Put(3, "c") // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	for _, k := range []int{1, 3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("missing %d", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Put("k", 1)
	c.Put("k", 2)
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("got %d, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (update must not duplicate)", c.Len())
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New[int, int](4)
	calls := 0
	v, hit := c.GetOrCompute(7, func() int { calls++; return 49 })
	if hit || v != 49 || calls != 1 {
		t.Fatalf("first lookup: v=%d hit=%v calls=%d", v, hit, calls)
	}
	v, hit = c.GetOrCompute(7, func() int { calls++; return 0 })
	if !hit || v != 49 || calls != 1 {
		t.Fatalf("second lookup: v=%d hit=%v calls=%d", v, hit, calls)
	}
}

func TestPurge(t *testing.T) {
	c := New[int, int](8)
	for i := 0; i < 8; i++ {
		c.Put(i, i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Purge", c.Len())
	}
	// The list must be reusable after a purge.
	c.Put(1, 1)
	if v, ok := c.Get(1); !ok || v != 1 {
		t.Fatal("cache unusable after Purge")
	}
}

func TestNilCacheInert(t *testing.T) {
	var c *Cache[int, int]
	if _, ok := c.Get(1); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(1, 1) // must not panic
	c.Purge()
	if c.Len() != 0 || c.Cap() != 0 {
		t.Fatal("nil cache not inert")
	}
	if v, hit := c.GetOrCompute(1, func() int { return 9 }); hit || v != 9 {
		t.Fatalf("nil GetOrCompute: v=%d hit=%v", v, hit)
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 1)
	if c.Cap() != 1 || c.Len() != 1 {
		t.Fatalf("cap=%d len=%d, want 1/1", c.Cap(), c.Len())
	}
}

// TestConcurrentMixedOps drives every operation from many goroutines; run
// under -race this pins the locking. Invariant checked after: Len never
// exceeds capacity.
func TestConcurrentMixedOps(t *testing.T) {
	c := New[int, int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (w*31 + i) % 200
				switch i % 4 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				case 2:
					c.GetOrCompute(k, func() int { return i })
				case 3:
					if i%97 == 0 {
						c.Purge()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > c.Cap() {
		t.Fatalf("Len %d exceeds Cap %d", c.Len(), c.Cap())
	}
}

// TestEvictionIsLRUExact drives a known access pattern and checks the exact
// surviving set.
func TestEvictionIsLRUExact(t *testing.T) {
	c := New[int, int](3)
	for i := 1; i <= 3; i++ {
		c.Put(i, i)
	}
	c.Get(1)    // order (MRU→LRU): 1 3 2
	c.Put(4, 4) // evicts 2 → 4 1 3
	c.Get(3)    // → 3 4 1
	c.Put(5, 5) // evicts 1 → 5 3 4
	want := map[int]bool{3: true, 4: true, 5: true}
	for k := 1; k <= 5; k++ {
		_, ok := c.Get(k)
		if ok != want[k] {
			t.Fatalf("key %d: present=%v want %v", k, ok, want[k])
		}
	}
}

func TestNegativeCapacityFloor(t *testing.T) {
	c := New[int, int](-5)
	if c.Cap() != 1 {
		t.Fatalf("cap=%d, want 1", c.Cap())
	}
	c.Put(1, 1)
	c.Put(2, 2) // evicts 1: the floor still bounds the cache
	if _, ok := c.Get(1); ok {
		t.Fatal("1 should have been evicted at capacity 1")
	}
	if v, ok := c.Get(2); !ok || v != 2 {
		t.Fatal("missing 2")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// checkListIntegrity walks the recency list both ways and cross-checks it
// against the map: every list node is a map entry and vice versa, and the
// prev/next pointers agree. Internal-package test only — this is the
// invariant concurrent eviction must preserve.
func checkListIntegrity[K comparable, V any](t *testing.T, c *Cache[K, V]) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for e := c.head.next; e != &c.tail; e = e.next {
		if e.next.prev != e || e.prev.next != e {
			t.Fatalf("broken links at entry %v", e.key)
		}
		if c.m[e.key] != e {
			t.Fatalf("list entry %v not in map (or superseded)", e.key)
		}
		n++
		if n > len(c.m)+1 {
			t.Fatalf("list longer than map (%d entries): cycle or leak", len(c.m))
		}
	}
	if n != len(c.m) {
		t.Fatalf("list has %d entries, map has %d", n, len(c.m))
	}
}

// TestConcurrentEvictionBound hammers a tiny cache with far more distinct
// keys than capacity from many goroutines, so nearly every Put evicts. Run
// under -race this pins the eviction path's locking; afterwards the map and
// recency list must still agree exactly.
func TestConcurrentEvictionBound(t *testing.T) {
	const cap = 8
	c := New[int, int](cap)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := w*2000 + i // every goroutine writes distinct keys
				c.Put(k, i)
				c.Get(w*2000 + i/2)
				c.GetOrCompute(k%16, func() int { return i })
			}
		}(w)
	}
	wg.Wait()
	if got := c.Len(); got > cap {
		t.Fatalf("Len %d exceeds Cap %d after concurrent eviction", got, cap)
	}
	checkListIntegrity(t, c)
	// The cache must remain fully usable: fill it and verify exact retention.
	c.Purge()
	for i := 0; i < cap; i++ {
		c.Put(i, i)
	}
	for i := 0; i < cap; i++ {
		if v, ok := c.Get(i); !ok || v != i {
			t.Fatalf("key %d lost after stress (v=%d ok=%v)", i, v, ok)
		}
	}
	checkListIntegrity(t, c)
}

func BenchmarkGetHit(b *testing.B) {
	c := New[string, int](1024)
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		c.Put(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(keys[i%len(keys)])
	}
}
