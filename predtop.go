// Package predtop is a from-scratch Go reproduction of "PredTOP: Latency
// Predictor Utilizing DAG Transformers for Distributed Deep Learning
// Training with Operator Parallelism" (Acharya & Shu, IPPS 2025).
//
// PredTOP predicts the iteration latency of distributed deep-learning
// training under hybrid parallelism with a grey-box model: a black-box DAG
// Transformer predicts the optimal intra-stage latency of each pipeline
// stage on each device mesh, and a white-box closed form (Eqn 4) composes
// stage latencies into the end-to-end pipeline latency.
//
// This package is the public facade over the implementation packages:
//
//   - Benchmark models (GPT-3 1.3B, GShard-MoE 2.6B) as tensor-level
//     operator graphs with forward and backward passes ([BuildModel],
//     [GPT3Config], [MoEConfig])
//   - The simulated experimental platforms of the paper ([Platform1],
//     [Platform2]) with meshes and Table-III parallelism configurations
//   - Stage graph encoding: pruning, Table-I features, DAGRA reachability
//     masks and DAGPE depths ([NewEncoder])
//   - The Alpa-style intra-operator optimizer producing ground-truth
//     optimal stage latencies ([ProfileStage])
//   - Three trainable predictors — DAG Transformer, GCN, GAT — with the
//     paper's training recipe ([NewDAGTransformer], [Train])
//   - The white-box pipeline model ([PipelineLatency], [SimulatePipeline])
//   - The inter-stage parallelization planner with profiled or predicted
//     latency sources ([OptimizePlan], [TrainPredictorProvider])
//
// A minimal end-to-end flow:
//
//	model := predtop.BuildModel(predtop.GPT3Config())
//	platform := predtop.Platform2()
//	scenario := predtop.Scenarios(platform)[0]
//
//	enc := predtop.NewEncoder(model, true)
//	specs := predtop.SampleStages(model, rng, 60, 3)
//	ds := predtop.BuildDataset(enc, specs, scenario, predtop.DefaultProfiler())
//
//	train, val, test := predtop.Split(rng, len(ds.Samples), 0.5, 0.1)
//	net := predtop.NewDAGTransformer(rng, predtop.TransformerConfig{})
//	trained, _ := predtop.Train(net, ds, train, val, predtop.TrainConfig{})
//	fmt.Printf("test MRE: %.2f%%\n", trained.MRE(ds, test))
package predtop

import (
	"context"
	"io"
	"math/rand"
	"time"

	"predtop/internal/cluster"
	"predtop/internal/graphnn"
	"predtop/internal/models"
	"predtop/internal/obs"
	"predtop/internal/parallel"
	"predtop/internal/pipeline"
	"predtop/internal/planner"
	"predtop/internal/predictor"
	"predtop/internal/runledger"
	"predtop/internal/serve"
	"predtop/internal/sim"
	"predtop/internal/stage"
	"predtop/internal/tensor"
)

// Model-building API.
type (
	// ModelConfig describes a benchmark model (Table IV).
	ModelConfig = models.Config
	// Model is a benchmark model sliceable into pipeline stages.
	Model = models.Model
)

// GPT3Config returns the GPT-3 1.3B configuration of Table IV.
func GPT3Config() ModelConfig { return models.GPT3() }

// MoEConfig returns the GShard-MoE 2.6B configuration of Table IV.
func MoEConfig() ModelConfig { return models.MoE() }

// BuildModel constructs the segment list for cfg.
func BuildModel(cfg ModelConfig) *Model { return models.Build(cfg) }

// Cluster API.
type (
	// Platform is one of the paper's experimental environments.
	Platform = cluster.Platform
	// Mesh is a rectangular device slice of a platform (Table II).
	Mesh = cluster.Mesh
	// ParallelConfig is a Table-III intra-operator parallelism setting.
	ParallelConfig = cluster.ParallelConfig
	// Scenario is a (mesh, configuration) runtime pair.
	Scenario = cluster.Scenario
)

// Platform1 returns the 1-node × 2-A40 platform.
func Platform1() Platform { return cluster.Platform1() }

// Platform2 returns the 2-node × 2-A5500 platform.
func Platform2() Platform { return cluster.Platform2() }

// Meshes enumerates the Table-II meshes of a platform.
func Meshes(p Platform) []Mesh { return cluster.Meshes(p) }

// Scenarios enumerates every (mesh, configuration) pair of a platform.
func Scenarios(p Platform) []Scenario { return cluster.Scenarios(p) }

// Stage and dataset API.
type (
	// StageSpec is a contiguous segment range forming a pipeline stage.
	StageSpec = stage.Spec
	// Encoder caches encoded stage graphs (pruned, Table-I features).
	Encoder = predictor.Encoder
	// Dataset pairs encoded stages with profiled latencies.
	Dataset = predictor.Dataset
	// Sample is one (stage graph, profiled latency) example.
	Sample = predictor.Sample
	// Profiler models stage profiling noise and cost.
	Profiler = sim.Profiler
)

// NewEncoder returns a stage encoder for m (prune per paper §IV-B4).
func NewEncoder(m *Model, prune bool) *Encoder { return predictor.NewEncoder(m, prune) }

// SampleStages draws count distinct stages of ≤ maxLen segments.
func SampleStages(m *Model, rng *rand.Rand, count, maxLen int) []StageSpec {
	return predictor.CollectStages(m, rng, count, maxLen)
}

// AllStages enumerates the whole stage universe of ≤ maxLen segments.
func AllStages(m *Model, maxLen int) []StageSpec {
	return stage.AllSpecs(m.NumSegments(), maxLen)
}

// DefaultProfiler mirrors typical profiling practice (±0.8% noise, 2+5 runs).
func DefaultProfiler() Profiler { return sim.DefaultProfiler() }

// ProfileStage returns the simulator's optimal intra-stage training latency
// and a noisy profiled measurement under the scenario.
func ProfileStage(m *Model, sp StageSpec, sc Scenario, prof Profiler) (trueLat, measured float64, ok bool) {
	return predictor.ProfileStage(m, sp, sc, prof)
}

// BuildDataset profiles every feasible spec under sc.
func BuildDataset(enc *Encoder, specs []StageSpec, sc Scenario, prof Profiler) *Dataset {
	return predictor.BuildDataset(enc, specs, sc, prof)
}

// Split partitions [0, n) into train/validation/test index sets.
func Split(rng *rand.Rand, n int, trainFrac, valFrac float64) (train, val, test []int) {
	return stage.Split(rng, n, trainFrac, valFrac)
}

// Predictor API.
type (
	// PredictorModel is a trainable stage-latency predictor.
	PredictorModel = graphnn.Model
	// TransformerConfig configures the DAG Transformer (§IV-B6 defaults).
	TransformerConfig = graphnn.TransformerConfig
	// GCNConfig configures the GCN baseline.
	GCNConfig = graphnn.GCNConfig
	// GATConfig configures the GAT baseline.
	GATConfig = graphnn.GATConfig
	// TrainConfig carries the training recipe (§IV-B6/B8 defaults).
	TrainConfig = predictor.TrainConfig
	// TrainResult reports a completed training run.
	TrainResult = predictor.TrainResult
	// TrainHooks observes a training run (see TrainConfig.Hooks).
	TrainHooks = predictor.TrainHooks
	// EpochStats is one epoch of a training run, as delivered to
	// TrainHooks.OnEpoch and recorded in TrainResult.History.
	EpochStats = predictor.EpochStats
	// Trained is a fitted predictor ready for inference.
	Trained = predictor.Trained
)

// NewDAGTransformer builds the paper's DAG Transformer predictor.
func NewDAGTransformer(rng *rand.Rand, cfg TransformerConfig) PredictorModel {
	return graphnn.NewDAGTransformer(rng, cfg)
}

// NewGCN builds the GCN baseline predictor.
func NewGCN(rng *rand.Rand, cfg GCNConfig) PredictorModel { return graphnn.NewGCN(rng, cfg) }

// NewGAT builds the GAT baseline predictor.
func NewGAT(rng *rand.Rand, cfg GATConfig) PredictorModel { return graphnn.NewGAT(rng, cfg) }

// Train fits a predictor with MAE loss, Adam, cosine decay, and early
// stopping, restoring the best-validation weights.
func Train(m PredictorModel, ds *Dataset, trainIdx, valIdx []int, cfg TrainConfig) (Trained, TrainResult) {
	return predictor.Train(m, ds, trainIdx, valIdx, cfg)
}

// White-box pipeline API.

// PipelineLatency is Eqn 4: T = Σ tᵢ + (B−1)·max tⱼ.
func PipelineLatency(stageLat []float64, microbatches int) float64 {
	return pipeline.Latency(stageLat, microbatches)
}

// SimulatePipeline runs the synchronous pipeline schedule, returning the
// makespan and per-task timeline.
func SimulatePipeline(stageLat []float64, microbatches int) (float64, []pipeline.Task) {
	return pipeline.Simulate(stageLat, microbatches)
}

// Planner API.
type (
	// Plan is a stage partition with submesh assignments.
	Plan = planner.Plan
	// PlanOptions configures the inter-stage search.
	PlanOptions = planner.Options
	// LatencyFn estimates optimal intra-stage latency of (stage, mesh).
	LatencyFn = planner.LatencyFn
	// CostMeter accumulates optimization-cost components (Fig 10a).
	CostMeter = planner.Meter
	// PredictorOptions configures PredTOP's planner integration.
	PredictorOptions = planner.PredictorOptions
	// PredictorKind selects the black-box architecture.
	PredictorKind = planner.PredictorKind
	// PlanSearchStats describes what one OptimizePlan call explored
	// (deterministic counts only; see PlanOptions.Stats).
	PlanSearchStats = planner.SearchStats
	// PlanProviderInfo identifies a plan's latency source: kind, seed, and
	// trained-weight fingerprint (see PredictorOptions.Info).
	PlanProviderInfo = planner.ProviderInfo
	// PlanReport is a plan's provenance record: per-stage latencies, mesh
	// assignments, Eqn-4 decomposition, search stats, and predictor identity,
	// serializable as byte-identical-per-seed JSON or /statusz-style text.
	PlanReport = planner.Report
	// PlanReportOptions supplies the context BuildPlanReport cannot derive
	// from the plan itself.
	PlanReportOptions = planner.ReportOptions
	// PlanReportDiff is the side-by-side latency comparison of two reports.
	PlanReportDiff = planner.ReportDiff
	// PlanPerturbation is a what-if scenario: microbatch override, platform
	// swap, or interconnect scale factors (see PlanWhatIf).
	PlanPerturbation = planner.Perturbation
)

// Predictor architectures for the planner integration.
const (
	KindTransformer = planner.KindTransformer
	KindGCN         = planner.KindGCN
	KindGAT         = planner.KindGAT
)

// OptimizePlan searches stage partitions and submesh assignments minimizing
// the Eqn-4 iteration latency under the given latency source.
func OptimizePlan(numSegments int, p Platform, lat LatencyFn, opt PlanOptions) (Plan, bool) {
	return planner.Optimize(numSegments, p, lat, opt)
}

// FullProfiling returns vanilla Alpa's profile-everything latency source.
func FullProfiling(m *Model, prof Profiler, meter *CostMeter) LatencyFn {
	return planner.FullProfiling(m, prof, meter)
}

// PartialProfiling returns vanilla Alpa's heuristic partial-profiling source.
func PartialProfiling(m *Model, prof Profiler, meter *CostMeter, alpha float64) LatencyFn {
	return planner.PartialProfiling(m, prof, meter, alpha)
}

// TrainPredictorProvider implements the PredTOP workflow (§VI): profile a
// sampled stage subset, train per-scenario predictors, and answer planner
// queries with predictions.
func TrainPredictorProvider(m *Model, p Platform, opt PredictorOptions, prof Profiler, meter *CostMeter) LatencyFn {
	return planner.TrainPredictorProvider(m, p, opt, prof, meter)
}

// EvaluatePlan returns the ground-truth iteration latency of a plan.
func EvaluatePlan(m *Model, plan Plan, microbatches int) (float64, bool) {
	return planner.EvaluatePlan(m, plan, microbatches)
}

// TrueStageLatency returns the simulator-exact optimal stage latency on a
// mesh (best Table-III configuration).
func TrueStageLatency(m *Model, sp StageSpec, mesh Mesh) (float64, bool) {
	return planner.TrueStageLatency(m, sp, mesh)
}

// BuildPlanReport assembles the provenance report for a plan (see
// PlanReport). Building a report never mutates the plan.
func BuildPlanReport(m *Model, p Platform, plan Plan, opt PlanReportOptions) *PlanReport {
	return planner.BuildReport(m, p, plan, opt)
}

// PlanWhatIf replays a cached plan against a perturbed cluster or microbatch
// count without re-searching, returning the scenario's report for
// DiffPlanReports against the baseline. ok is false when a stage no longer
// fits under the perturbation.
func PlanWhatIf(m *Model, base Platform, plan Plan, microbatches int, pt PlanPerturbation, opt PlanReportOptions) (*PlanReport, bool) {
	return planner.WhatIf(m, base, plan, microbatches, pt, opt)
}

// ParsePlanPerturbation parses the -whatif flag syntax ("microbatches=32,
// internode-bw=x4"; see PlanPerturbation).
func ParsePlanPerturbation(s string) (PlanPerturbation, error) {
	return planner.ParsePerturbation(s)
}

// DiffPlanReports compares two plan reports stage by stage and on the Eqn-4
// total — typically a baseline and its what-if replay.
func DiffPlanReports(base, scenario *PlanReport) *PlanReportDiff {
	return planner.Diff(base, scenario)
}

// LoadPlanReport reads a report previously written by PlanReport.SaveFile.
func LoadPlanReport(path string) (*PlanReport, error) { return planner.LoadReport(path) }

// Observability API (internal/obs): optional metrics, JSONL event records,
// and Chrome-trace export. Every handle is nil-safe — a nil registry, sink,
// trace builder, or logger is an inert no-op — so instrumentation can be
// threaded unconditionally and enabled only when the user asks for it.
type (
	// Observer bundles the three observability outputs for APIs that take
	// one optional handle (e.g. experiments.Preset.Obs).
	Observer = obs.Observer
	// MetricsRegistry collects counters, gauges, and histograms.
	MetricsRegistry = obs.Registry
	// MetricSnapshot is one exported metric (see MetricsRegistry.Snapshot).
	MetricSnapshot = obs.Metric
	// EventSink streams JSONL records, one JSON object per line.
	EventSink = obs.Sink
	// TraceBuilder accumulates Chrome-tracing events across named tracks.
	TraceBuilder = obs.TraceBuilder
	// ProgressLogger prints progress lines unless quiet (or nil).
	ProgressLogger = obs.Logger
	// SpanProfiler aggregates nested timed spans into a deterministic
	// self-time profile tree (see TrainHooks.Profiler, PlanOptions.Prof, and
	// Model.Prof). A nil profiler and its spans are inert no-ops.
	SpanProfiler = obs.Profiler
	// ProfileSpan is one timed region of a SpanProfiler; the zero value is
	// inert, so spans can be threaded unconditionally.
	ProfileSpan = obs.Span
	// MetricsServer serves live telemetry over HTTP: GET /metrics in
	// Prometheus text exposition format, GET /healthz, and the stdlib
	// profiling handlers under /debug/pprof/.
	MetricsServer = obs.Server
	// MetricsServerConfig configures StartMetricsServer.
	MetricsServerConfig = obs.ServerConfig
	// RuntimeSampler periodically snapshots Go runtime health (goroutines,
	// heap, GC) into a MetricsRegistry for live scrapes.
	RuntimeSampler = obs.RuntimeSampler
	// TraceContext is a run's deterministic correlation identity: trace and
	// span ids derived from the run seed (never wall clock or rand), attached
	// to the sink, registry, trace builder, and flight recorder so one grep
	// joins every telemetry channel of a run.
	TraceContext = obs.TraceContext
	// FlightRecorder keeps the last N telemetry events in a fixed-size ring
	// and dumps them (plus goroutine stacks) as JSONL on panic, SIGQUIT, or
	// GET /debug/flightrecorder.
	FlightRecorder = obs.FlightRecorder
	// AccuracyMonitor streams predicted-vs-actual residuals per (family,
	// mesh, op) key: Welford MRE, quantile-sketch P50/P95, max, and drift
	// detection exported through metrics and JSONL.
	AccuracyMonitor = obs.AccuracyMonitor
	// AccuracyConfig configures an AccuracyMonitor.
	AccuracyConfig = obs.AccuracyConfig
	// AccuracyKey identifies one residual population (family, mesh, op).
	AccuracyKey = obs.AccuracyKey
	// AccuracyStats is a point-in-time read of one accuracy group.
	AccuracyStats = obs.AccuracyStats
	// SLOTracker keeps rolling multi-window (1m/5m/1h) latency percentiles,
	// error rate, and error-budget burn against configured objectives, with
	// edge-triggered breach callbacks. A nil tracker is an inert no-op.
	SLOTracker = obs.SLOTracker
	// SLOTrackerConfig configures NewSLOTracker: objectives, minimum sample
	// arming threshold, metrics registry, breach callback, and clock.
	SLOTrackerConfig = obs.SLOConfig
	// SLOSnapshot is a point-in-time read of the tracker: per-window stats,
	// breach state, and the worst recent requests with their trace ids.
	SLOSnapshot = obs.SLOSnapshot
	// SLOWindowStats is one rolling window's aggregates (count, errors,
	// p50/p95/p99, error rate, burn rate).
	SLOWindowStats = obs.SLOWindowStats
	// SLOWorstRequest is one slow-request exemplar kept by the tracker,
	// carrying the trace/span ids that join it to the access log.
	SLOWorstRequest = obs.WorstRequest
	// MetricLabel is one metric dimension for labeled counters and gauges.
	MetricLabel = obs.Label
	// WorkerPanic wraps a panic recovered in a parallel worker goroutine,
	// re-raised on the calling goroutine with the worker's original stack.
	WorkerPanic = parallel.WorkerPanic
	// ServeConfig configures the predictor-as-a-service daemon (StartServe).
	ServeConfig = serve.Config
	// ServeDaemon is a running serving daemon: POST /predict, GET /models,
	// POST /reload, plus the standard telemetry endpoints on one listener.
	ServeDaemon = serve.Server
	// ServePredictRequest is the JSON body of POST /predict.
	ServePredictRequest = serve.PredictRequest
	// ServePredictResponse is the JSON body of a successful /predict answer.
	ServePredictResponse = serve.PredictResponse
	// ServeReplayConfig configures a synthetic load replay (ServeReplay).
	ServeReplayConfig = serve.ReplayConfig
	// ServeReplayResult summarizes one replay: client-side throughput and
	// latency percentiles plus the daemon's batching and cache counters.
	ServeReplayResult = serve.ReplayResult
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// KernelTuneInfo reports the matmul kernel split parameters in effect and how
// they were chosen (see ApplyKernelTune).
type KernelTuneInfo = tensor.KernelTuneResult

// ApplyKernelTune configures the matmul kernel work split from a -kernel-tune
// flag or the PREDTOP_KERNEL_TUNE environment value — "off" restores the
// built-in defaults, "auto" measures the serial/parallel crossover and row
// block on this host, and an integer pins the crossover. Tuning never changes
// numerical results, only where the split lands. When reg is non-nil the
// outcome is published as gauges, so the formerly hardcoded constants are
// observable on every /metrics page:
//
//	predtop_kernel_tune_info{mode=...} 1
//	predtop_kernel_min_flops           serial/parallel crossover (multiply-adds)
//	predtop_kernel_row_block           rows per parallel task
//	predtop_kernel_tune_seconds        wall time of the auto measurement
//	predtop_kernel_simd                1 when the AVX2 kernels are active
func ApplyKernelTune(mode string, reg *MetricsRegistry) (KernelTuneInfo, error) {
	res, err := tensor.ApplyKernelTune(mode)
	if err != nil {
		return res, err
	}
	if reg != nil {
		reg.GaugeWith("predtop_kernel_tune_info", MetricLabel{Key: "mode", Value: res.Mode}).Set(1)
		reg.Gauge("predtop_kernel_min_flops").Set(float64(res.MinFlops))
		reg.Gauge("predtop_kernel_row_block").Set(float64(res.RowBlock))
		reg.Gauge("predtop_kernel_tune_seconds").Set(res.TuneSeconds)
		simd := 0.0
		if tensor.SIMDEnabled() {
			simd = 1
		}
		reg.Gauge("predtop_kernel_simd").Set(simd)
	}
	return res, nil
}

// NewEventSink returns a JSONL sink writing to w (nil w → inert nil sink).
func NewEventSink(w io.Writer) *EventSink { return obs.NewSink(w) }

// NewTrace returns an empty Chrome-trace builder.
func NewTrace() *TraceBuilder { return obs.NewTrace() }

// NewProgressLogger returns a progress logger, or an inert nil logger when
// quiet is set.
func NewProgressLogger(w io.Writer, quiet bool) *ProgressLogger { return obs.NewLogger(w, quiet) }

// NewSpanProfiler returns an empty span profiler. A nil *SpanProfiler is a
// valid inert handle: Start returns a zero ProfileSpan and nothing is timed.
func NewSpanProfiler() *SpanProfiler { return obs.NewProfiler() }

// NewTraceContext returns the root trace context for a run: ids derive from
// (seed, name) alone, so the same seed reproduces the same trace id.
func NewTraceContext(seed int64, name string) *TraceContext {
	return obs.NewTraceContext(seed, name)
}

// WithTraceContext returns a context carrying tc (see TraceContextFrom).
func WithTraceContext(ctx context.Context, tc *TraceContext) context.Context {
	return obs.WithTraceContext(ctx, tc)
}

// TraceContextFrom extracts the TraceContext from ctx (nil when absent).
func TraceContextFrom(ctx context.Context) *TraceContext { return obs.TraceContextFrom(ctx) }

// NewFlightRecorder returns a flight recorder keeping the last capacity
// events (capacity <= 0 selects the 256-event default).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewFlightRecorder(capacity) }

// NewAccuracyMonitor returns an online prediction-accuracy monitor.
func NewAccuracyMonitor(cfg AccuracyConfig) *AccuracyMonitor { return obs.NewAccuracyMonitor(cfg) }

// NewSLOTracker returns a rolling SLO tracker for the given objectives. The
// serving daemon builds one automatically when ServeConfig sets SLOP99 or
// SLOErr; construct one directly to track any other request stream.
func NewSLOTracker(cfg SLOTrackerConfig) *SLOTracker { return obs.NewSLOTracker(cfg) }

// SetWorkerPanicHook installs a process-wide hook observing the first panic
// recovered in any parallel worker loop before it is re-raised on the caller
// (typically FlightRecorder.PanicHook). Nil removes it.
func SetWorkerPanicHook(fn func(recovered any, stack []byte)) { parallel.SetPanicHook(fn) }

// StartMetricsServer binds cfg.Addr and serves /metrics, /healthz, and
// /debug/pprof/ until ctx is cancelled or Close is called. Use Addr ":0" to
// pick a free port and read it back from MetricsServer.Addr.
func StartMetricsServer(ctx context.Context, cfg MetricsServerConfig) (*MetricsServer, error) {
	return obs.StartServer(ctx, cfg)
}

// StartRuntimeSampler samples Go runtime gauges into reg every interval
// (<= 0 selects the 1s default) until Stop is called. A nil registry returns
// a nil (inert) sampler.
func StartRuntimeSampler(reg *MetricsRegistry, interval time.Duration) *RuntimeSampler {
	return obs.StartRuntimeSampler(reg, interval)
}

// WriteMetricsProm writes reg as a Prometheus text exposition (version
// 0.0.4): counters and gauges as single samples, histograms as cumulative
// buckets with _sum and _count. A nil registry writes an empty exposition.
func WriteMetricsProm(w io.Writer, reg *MetricsRegistry) error { return reg.WriteProm(w) }

// AddPipelineSchedule appends a simulated 1F1B schedule to a trace builder:
// one "<prefix>stage N" track per stage, one slice per microbatch task.
// Invalid input (microbatches < 1; negative, NaN, or infinite latencies) is
// an error.
func AddPipelineSchedule(tb *TraceBuilder, prefix string, stageLat []float64, microbatches int) error {
	return pipeline.AddSchedule(tb, prefix, stageLat, microbatches)
}

// WritePipelineTrace renders a simulated pipeline schedule as a Chrome-tracing
// JSON file loadable in Perfetto or chrome://tracing.
func WritePipelineTrace(w io.Writer, stageLat []float64, microbatches int) error {
	return pipeline.WriteChromeTrace(w, stageLat, microbatches)
}

// SaveTrained writes a trained predictor (architecture spec, label scale,
// and weights) to path.
func SaveTrained(path string, t Trained) error { return predictor.SaveFile(path, t) }

// LoadTrained reads a predictor saved by SaveTrained.
func LoadTrained(path string) (Trained, error) { return predictor.LoadFile(path) }

// StartServe loads the daemon's model registry and begins serving; see
// ServeConfig. The returned daemon is already answering requests.
func StartServe(ctx context.Context, cfg ServeConfig) (*ServeDaemon, error) {
	return serve.Start(ctx, cfg)
}

// ServeReplay drives a deterministic synthetic query load against a running
// daemon and returns throughput, latency percentiles, and the daemon's
// batching and cache counters.
func ServeReplay(cfg ServeReplayConfig) (*ServeReplayResult, error) { return serve.Replay(cfg) }

// Error-attribution API (internal/predictor): where a trained predictor's
// residuals live, bucketed by op type, node count, and stage depth.
type (
	// ErrorAttribution is one error-attribution snapshot: per-bucket sample
	// counts, mean relative error, and worst-case error.
	ErrorAttribution = predictor.Attribution
	// ErrorAttributionBucket is one bucket of an ErrorAttribution.
	ErrorAttributionBucket = predictor.AttributionBucket
	// PredictorEvaluation is Trained.Evaluate's result: the held-out MRE,
	// per-sample predictions, and the error-attribution snapshot, all from a
	// single batched forward pass.
	PredictorEvaluation = predictor.Evaluation
)

// MergeAttributions merges per-subset attributions into one exact aggregate,
// as if the union had been attributed in one call.
func MergeAttributions(parts ...*ErrorAttribution) *ErrorAttribution {
	return predictor.MergeAttributions(parts...)
}

// WeightFingerprint returns the 16-hex FNV-1a fingerprint of the trained
// predictors' weights — the same scheme plan provenance reports carry, so a
// model file, a plan, and a run-ledger manifest can be matched by identity.
func WeightFingerprint(trs ...Trained) string { return planner.WeightFingerprint(trs...) }

// Run-ledger API (internal/runledger): persistent, diffable run manifests.
type (
	// RunManifest is one recorded tool invocation: a deterministic canonical
	// section (byte-identical per seed) plus wall-clock session facts.
	RunManifest = runledger.Manifest
	// RunLedger is a content-addressed manifest store (conventionally the
	// runs/ directory). A nil ledger is inert.
	RunLedger = runledger.Store
	// RunEntry is one stored run as listed by RunLedger.List.
	RunEntry = runledger.Entry
	// RunDiff is the side-by-side comparison of two run manifests.
	RunDiff = runledger.Diff
	// RunGateThresholds configures RunDiff.Gate's regression sentinel.
	RunGateThresholds = runledger.GateThresholds
)

// NewRunManifest starts a manifest for one invocation of tool with seed.
func NewRunManifest(tool string, seed int64) *RunManifest { return runledger.New(tool, seed) }

// OpenRunLedger opens the manifest store rooted at dir ("" returns a nil,
// inert ledger — the -runledger flag off state).
func OpenRunLedger(dir string) *RunLedger { return runledger.Open(dir) }

// LoadRunManifest reads one stored manifest file.
func LoadRunManifest(path string) (*RunManifest, error) { return runledger.Load(path) }

// CompareRuns diffs two manifests field by field, population by population.
func CompareRuns(base, other *RunManifest, baseLabel, otherLabel string) *RunDiff {
	return runledger.Compare(base, other, baseLabel, otherLabel)
}

// Extended white-box schedules (beyond the paper's Eqn 4).

// GPipeLatency models GPipe with an explicit flush between the forward and
// backward pipeline passes; fwdFrac ≤ 0 uses the standard 1/3 split.
func GPipeLatency(stageLat []float64, microbatches int, fwdFrac float64) float64 {
	return pipeline.GPipeLatency(stageLat, microbatches, fwdFrac)
}

// InterleavedLatency models interleaved 1F1B with V virtual stages per
// device, shrinking the pipeline bubble by V.
func InterleavedLatency(stageLat []float64, microbatches, virtualStages int) float64 {
	return pipeline.InterleavedLatency(stageLat, microbatches, virtualStages)
}

// CommAwareLatency extends Eqn 4 with inter-stage activation-transfer
// latencies (len(commLat) = len(stageLat)−1), the term the paper drops.
func CommAwareLatency(stageLat, commLat []float64, microbatches int) float64 {
	return pipeline.CommAwareLatency(stageLat, commLat, microbatches)
}

// BubbleFraction reports the share of device time lost to the pipeline
// bubble under Eqn 4.
func BubbleFraction(stageLat []float64, microbatches int) float64 {
	return pipeline.BubbleFraction(stageLat, microbatches)
}
