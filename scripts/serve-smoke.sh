#!/bin/sh
# serve-smoke: build predtop-serve + predtop-replay, train a throwaway tiny
# model, bring the daemon up on an ephemeral port, answer one query through
# predtop-replay -smoke, and shut down cleanly. Any failure — build, train,
# startup, query, or a daemon that does not exit 0 on SIGTERM — fails the
# script, which is wired into `make ci` via the serve-smoke target.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
SERVE_PID=""

cleanup() {
    status=$?
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -TERM "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
    exit $status
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building"
$GO build -o "$WORK/predtop-serve" ./cmd/predtop-serve
$GO build -o "$WORK/predtop-replay" ./cmd/predtop-replay
$GO build -o "$WORK/predtop-train" ./cmd/predtop-train

echo "serve-smoke: training a throwaway model"
mkdir -p "$WORK/models"
"$WORK/predtop-train" -bench GPT-3 -layers 4 -samples 10 -epochs 2 \
    -o "$WORK/models/smoke.predtop" -quiet

echo "serve-smoke: starting the daemon"
# Generous explicit objectives: the SLO machinery (tracker, /statusz, breach
# wiring) runs for real, but a slow CI box can never trip a breach and flake
# the gate. The incident dir proves the breach path stays quiet: it must be
# empty at shutdown.
"$WORK/predtop-serve" -models "$WORK/models" -listen 127.0.0.1:0 \
    -addrfile "$WORK/serve.addr" -quiet \
    -slo-p99 30s -slo-err 0.9 -incidents "$WORK/incidents" \
    -accesslog "$WORK/access.jsonl" &
SERVE_PID=$!

# Wait for the address file (the daemon writes it once it is serving).
i=0
while [ ! -s "$WORK/serve.addr" ]; do
    i=$((i+1))
    if [ $i -gt 100 ]; then
        echo "serve-smoke: daemon never wrote its address file" >&2
        exit 1
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "serve-smoke: daemon exited before serving" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$WORK/serve.addr")

echo "serve-smoke: querying http://$ADDR"
# -smoke fails on an unanswered query OR a daemon in SLO breach, and prints
# the scraped SLO verdict; require the verdict to actually be there. (No
# pipe into tee: plain sh would take the pipeline status from tee and mask a
# replay failure.)
"$WORK/predtop-replay" -smoke -url "http://$ADDR" -layers 4 > "$WORK/smoke.out"
cat "$WORK/smoke.out"
grep -q "slo ok" "$WORK/smoke.out" || {
    echo "serve-smoke: replay printed no SLO verdict" >&2
    exit 1
}

echo "serve-smoke: checking /statusz"
if ! curl -sf "http://$ADDR/statusz" | grep -q "state: ok"; then
    echo "serve-smoke: /statusz missing or not ok" >&2
    exit 1
fi

if [ -d "$WORK/incidents" ] && [ -n "$(ls -A "$WORK/incidents" 2>/dev/null)" ]; then
    echo "serve-smoke: unexpected incident bundle(s) under generous objectives" >&2
    exit 1
fi

echo "serve-smoke: shutting down"
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "serve-smoke: daemon exited nonzero on SIGTERM" >&2
    SERVE_PID=""
    exit 1
fi
SERVE_PID=""
echo "serve-smoke: ok"
