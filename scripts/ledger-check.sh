#!/bin/sh
# ledger-check: report on the repository's own run ledger (the runs/
# directory the tools write under -runledger). Lists the recorded runs and,
# when a baseline is pinned, renders the sentinel diff against the latest
# run. Informational only: a regression past the thresholds prints loudly
# but exits 0 — `make ci` must stay green on a checkout with no local runs,
# and whether a local regression blocks a change is the developer's call
# (run `predtop-runs diff -gate` directly to enforce it).
set -eu

GO=${GO:-go}
DIR=${RUNS_DIR:-runs}

if [ ! -d "$DIR" ] || [ -z "$(ls "$DIR"/*.json 2>/dev/null)" ]; then
    echo "ledger-check: no runs recorded in $DIR/ (record one with -runledger $DIR)"
    exit 0
fi

echo "ledger-check: runs recorded in $DIR/"
$GO run ./cmd/predtop-runs -dir "$DIR" list

if ! $GO run ./cmd/predtop-runs -dir "$DIR" baseline >/dev/null 2>&1; then
    echo "ledger-check: no baseline pinned; pin one with 'predtop-runs baseline <ref>' to enable the sentinel"
    exit 0
fi

echo "ledger-check: sentinel diff (baseline vs latest)"
if $GO run ./cmd/predtop-runs -dir "$DIR" diff -gate; then
    :
else
    echo "ledger-check: REGRESSION past thresholds (informational; not failing the build)" >&2
fi
exit 0
