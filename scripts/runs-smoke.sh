#!/bin/sh
# runs-smoke: build predtop-train, predtop-eval, and predtop-runs, record
# real runs into a throwaway ledger, and prove the cross-run observability
# contract end to end: two same-seed training runs share one content address
# with byte-identical canonical sections, the eval manifest carries the
# error-attribution snapshot, the diff renders it, and the regression
# sentinel passes a run against its own baseline. Any failure fails the
# script, which is wired into `make ci` via the runs-smoke target.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)

cleanup() {
    status=$?
    rm -rf "$WORK"
    exit $status
}
trap cleanup EXIT INT TERM

echo "runs-smoke: building"
$GO build -o "$WORK/predtop-train" ./cmd/predtop-train
$GO build -o "$WORK/predtop-eval" ./cmd/predtop-eval
$GO build -o "$WORK/predtop-runs" ./cmd/predtop-runs

LEDGER="$WORK/runs"

echo "runs-smoke: recording two same-seed training runs"
"$WORK/predtop-train" -bench GPT-3 -layers 4 -samples 10 -epochs 2 -seed 7 \
    -o "$WORK/m1.predtop" -runledger "$LEDGER" -quiet
"$WORK/predtop-train" -bench GPT-3 -layers 4 -samples 10 -epochs 2 -seed 7 \
    -o "$WORK/m2.predtop" -runledger "$LEDGER" -quiet

echo "runs-smoke: recording a quick eval run"
"$WORK/predtop-eval" -preset quick -bench GPT-3 -platform 1 -seed 7 \
    -runledger "$LEDGER" -quiet > /dev/null

"$WORK/predtop-runs" -dir "$LEDGER" list > "$WORK/list.out"
cat "$WORK/list.out"
trains=$(grep -c predtop-train "$WORK/list.out" || true)
if [ "$trains" != 2 ]; then
    echo "runs-smoke: expected 2 training runs in the ledger, saw $trains" >&2
    exit 1
fi
grep -q predtop-eval "$WORK/list.out" || {
    echo "runs-smoke: eval run missing from the ledger" >&2
    exit 1
}

echo "runs-smoke: checking same-seed canonical sections are byte-identical"
# The two training runs collide on one content address: the first takes
# <id>.json, the rerun <id>.1.json. Their canonical sections must agree to
# the byte (that is what the id hashes) — cmp, not a numeric tolerance.
# The baseline mark column is blank here, so awk sees RUN as $1 and TOOL
# as $2 on every row.
ID=$(awk '$2 == "predtop-train" { print $1; exit }' "$WORK/list.out")
case "$ID" in
    *.*) echo "runs-smoke: first training run is a .N rerun ($ID)?" >&2; exit 1 ;;
esac
if [ ! -e "$LEDGER/$ID.1.json" ]; then
    echo "runs-smoke: rerun $ID.1.json missing — same seed hashed to a different id" >&2
    exit 1
fi
"$WORK/predtop-runs" -dir "$LEDGER" show -canonical "$ID" > "$WORK/c1.json"
"$WORK/predtop-runs" -dir "$LEDGER" show -canonical "$ID.1" > "$WORK/c2.json"
if ! cmp -s "$WORK/c1.json" "$WORK/c2.json"; then
    echo "runs-smoke: canonical sections differ across same-seed reruns" >&2
    exit 1
fi

echo "runs-smoke: diffing the reruns"
"$WORK/predtop-runs" -dir "$LEDGER" diff "$ID" "$ID.1" > "$WORK/diff.out"
grep -q "canonical sections: identical" "$WORK/diff.out" || {
    echo "runs-smoke: diff did not report identical canonical sections" >&2
    exit 1
}
grep -q "error attribution" "$WORK/diff.out" || {
    echo "runs-smoke: diff rendered no error-attribution breakdown" >&2
    exit 1
}
for axis in op nodes depth; do
    awk -v a="$axis" '$2 == a { found = 1 } END { exit !found }' "$WORK/diff.out" || {
        echo "runs-smoke: attribution breakdown missing the $axis axis" >&2
        exit 1
    }
done

echo "runs-smoke: gating the eval run against its own baseline"
"$WORK/predtop-runs" -dir "$LEDGER" baseline latest > /dev/null
"$WORK/predtop-runs" -dir "$LEDGER" diff -gate > "$WORK/gate.out"
grep -q "gate: ok" "$WORK/gate.out" || {
    echo "runs-smoke: sentinel did not report ok on identical runs" >&2
    exit 1
}

echo "runs-smoke: ok"
