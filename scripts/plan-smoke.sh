#!/bin/sh
# plan-smoke: build predtop-plan, run the quick-preset GPT-3 planner with
# provenance reports and a what-if replay, then prove the observability
# contract end to end: the what-if diff prints, the report JSON round-trips
# through -diff, and a second identical run reproduces every report
# byte-for-byte (reports are pure functions of the seed — no wall-clock, no
# map-order, no scheduling dependence). Any failure fails the script, which
# is wired into `make ci` via the plan-smoke target.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)

cleanup() {
    status=$?
    rm -rf "$WORK"
    exit $status
}
trap cleanup EXIT INT TERM

echo "plan-smoke: building"
$GO build -o "$WORK/predtop-plan" ./cmd/predtop-plan

echo "plan-smoke: planning with reports and a what-if replay"
"$WORK/predtop-plan" -preset quick -bench GPT-3 -quiet \
    -report "$WORK/r1" -whatif "microbatches=32,internode-bw=x4" > "$WORK/run1.out"

grep -q "what-if diff" "$WORK/run1.out" || {
    echo "plan-smoke: no what-if diff in the output" >&2
    exit 1
}
for v in alpa-full alpa-partial predtop-gcn predtop-gat predtop-tran; do
    for f in "$WORK/r1/gpt-3-$v.json" "$WORK/r1/gpt-3-$v.txt" "$WORK/r1/gpt-3-$v-whatif.json"; do
        if [ ! -s "$f" ]; then
            echo "plan-smoke: missing report $f" >&2
            exit 1
        fi
    done
done
grep -q '"fingerprint"' "$WORK/r1/gpt-3-predtop-tran.json" || {
    echo "plan-smoke: predictor report has no weight fingerprint" >&2
    exit 1
}

echo "plan-smoke: diffing baseline vs what-if reports"
"$WORK/predtop-plan" \
    -diff "$WORK/r1/gpt-3-predtop-tran.json,$WORK/r1/gpt-3-predtop-tran-whatif.json" \
    > "$WORK/diff.out"
grep -q "total" "$WORK/diff.out" || {
    echo "plan-smoke: -diff printed no totals" >&2
    exit 1
}

echo "plan-smoke: re-running for byte-identical reports"
"$WORK/predtop-plan" -preset quick -bench GPT-3 -quiet -report "$WORK/r2" > /dev/null
for f in "$WORK"/r1/*.json; do
    name=$(basename "$f")
    case "$name" in *-whatif.json) continue ;; esac
    if ! cmp -s "$f" "$WORK/r2/$name"; then
        echo "plan-smoke: report $name not byte-identical across runs" >&2
        exit 1
    fi
done

echo "plan-smoke: ok"
