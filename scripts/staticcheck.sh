#!/bin/sh
# staticcheck gate for `make ci`. Runs honnef.co/go/tools/cmd/staticcheck over
# the whole tree when a copy is available OFFLINE — a binary on PATH first,
# else a version already present in the module cache via `go run` with the
# network proxy disabled. Environments with neither (and no network to fetch
# one) print a notice and skip instead of failing: the gate must stay
# runnable on air-gapped machines, and it hard-fails only on actual findings.
set -eu

GO=${GO:-go}

if command -v staticcheck >/dev/null 2>&1; then
    echo "staticcheck: $(command -v staticcheck) ./..."
    exec staticcheck ./...
fi

MODCACHE=$($GO env GOMODCACHE)
if [ -n "$MODCACHE" ] && ls -d "$MODCACHE"/honnef.co/go/tools@* >/dev/null 2>&1; then
    # Pin to the newest cached version; GOPROXY=off guarantees no download.
    ver=$(ls -d "$MODCACHE"/honnef.co/go/tools@* | sort | tail -1)
    ver=${ver##*@}
    echo "staticcheck: $GO run honnef.co/go/tools/cmd/staticcheck@$ver ./..."
    exec env GOPROXY=off $GO run "honnef.co/go/tools/cmd/staticcheck@$ver" ./...
fi

echo "staticcheck: not available offline (no binary on PATH, nothing in the module cache); skipping"
