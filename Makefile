# Tier-1 gate: everything `make ci` runs must stay green.
GO ?= go
GOFMT ?= gofmt

.PHONY: ci fmt vet build test race bench bench-compare serve-smoke plan-smoke runs-smoke cover ledger-check staticcheck

ci: fmt vet staticcheck build test race serve-smoke plan-smoke runs-smoke cover ledger-check

# gofmt must be a no-op on the whole tree; offenders are listed so the gate
# fails with the file names.
fmt:
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck runs whenever a copy is available offline (PATH binary, or a
# module-cache version via `go run` with GOPROXY=off); otherwise it skips
# with a notice so air-gapped machines keep a green gate. Findings fail ci.
staticcheck:
	GO="$(GO)" sh scripts/staticcheck.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race pass runs in -short mode: it still exercises the concurrent
# training, reduction, and experiment paths — including the hook-instrumented
# training tests (TestTrainHooksAndHistory and the hooked rows of the
# bitwise-determinism table), the flight-recorder panic-injection tests in
# internal/parallel and internal/obs, and the concurrent ring-buffer writes —
# but drops the slow grid regenerations.
race:
	$(GO) test -race -short ./internal/...

# serve-smoke boots the serving stack for real: build the daemon and load
# driver, train a throwaway model, serve it on an ephemeral port, answer one
# query, and shut down cleanly. Nonzero exit on any failure.
serve-smoke:
	GO="$(GO)" sh scripts/serve-smoke.sh

# plan-smoke exercises the planner observability stack for real: quick-preset
# planning with provenance reports and a what-if replay, a -diff over the
# emitted report files, and a byte-identical-report check across two runs of
# the same seed. Nonzero exit on any failure.
plan-smoke:
	GO="$(GO)" sh scripts/plan-smoke.sh

# runs-smoke exercises the run ledger for real: record two same-seed training
# runs plus a quick eval into a throwaway ledger, prove the canonical
# sections byte-identical (cmp, not tolerance), render the error-attribution
# diff, and pass the regression sentinel against a pinned baseline. Nonzero
# exit on any failure.
runs-smoke:
	GO="$(GO)" sh scripts/runs-smoke.sh

# cover prints per-package statement coverage (-short: same scope as the
# race pass). Informational — the leading '-' keeps a coverage-run hiccup
# from failing ci, whose gating `test` target already catches real failures.
cover:
	-$(GO) test -short -cover ./...

# ledger-check reports on the local run ledger (runs/): lists recorded runs
# and, when a baseline is pinned, renders the sentinel diff against the
# latest run. Informational by design — the script always exits 0, so ci
# stays green on a checkout with no recorded runs.
ledger-check:
	GO="$(GO)" sh scripts/ledger-check.sh

# Paper-artifact benchmarks at the quick preset; one iteration each.
# `make bench` also archives the run as a timestamped BENCH_<date>.json
# (go test -json event stream) for cross-commit comparison. Same-day reruns
# never overwrite an earlier archive: the name takes a .N suffix instead, so
# a baseline captured before an optimization survives the "after" run.
BENCH_FILE := $(shell d=$$(date +%Y-%m-%d); f=BENCH_$$d.json; n=1; \
	while [ -e $$f ]; do f=BENCH_$$d.$$n.json; n=$$((n+1)); done; echo $$f)
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' -json . | tee $(BENCH_FILE)

# bench-compare runs the benchmarks fresh (without archiving) and prints
# ns/op, B/op, and allocs/op deltas against the most recent BENCH_*.json —
# benchcmp selects the baseline by archive name (date, then .N rerun
# suffix), so the comparison is deterministic even after a checkout resets
# every mtime. Pass BASELINE=<name|date|date.N> to pin an older archive.
# The thresholds turn the comparison into a gate: any benchmark whose
# allocs/op grew >10% — or allocated at all from a zero-alloc baseline, which
# pins the guarded instrumentation-off hot paths — fails the target. The
# ns/op gate is looser (20%) because each run is a single iteration and
# back-to-back runs on a shared host drift by >10% from CPU contention
# alone; allocs/op is deterministic, wall time is not. Benchmarks under
# benchcmp's -nsfloor (10ms) are exempt from the ns gate entirely.
BASELINE ?=
bench-compare:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' -json . | \
		$(GO) run ./cmd/predtop-benchcmp -baseline '$(BASELINE)' \
			-allocthreshold 10 -nsthreshold 20
