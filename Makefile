# Tier-1 gate: everything `make ci` runs must stay green.
GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race pass runs in -short mode: it still exercises the concurrent
# training, reduction, and experiment paths (the determinism tests are not
# short-skipped), but drops the slow grid regenerations.
race:
	$(GO) test -race -short ./internal/...

# Paper-artifact benchmarks at the quick preset; one iteration each.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .
