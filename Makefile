# Tier-1 gate: everything `make ci` runs must stay green.
GO ?= go
GOFMT ?= gofmt

.PHONY: ci fmt vet build test race bench

ci: fmt vet build test race

# gofmt must be a no-op on the whole tree; offenders are listed so the gate
# fails with the file names.
fmt:
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race pass runs in -short mode: it still exercises the concurrent
# training, reduction, and experiment paths — including the hook-instrumented
# training tests (TestTrainHooksAndHistory and the hooked rows of the
# bitwise-determinism table) — but drops the slow grid regenerations.
race:
	$(GO) test -race -short ./internal/...

# Paper-artifact benchmarks at the quick preset; one iteration each.
# `make bench` also archives the run as a timestamped BENCH_<date>.json
# (go test -json event stream) for cross-commit comparison.
BENCH_FILE := BENCH_$(shell date +%Y-%m-%d).json
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' -json . | tee $(BENCH_FILE)
